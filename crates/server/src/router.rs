//! Route dispatch: `(method, path)` → handler → [`Response`].
//!
//! Every body is JSON (structured errors included), every unknown
//! route is a JSON 404, and every handler is synchronous — the only
//! asynchronous machinery is the job subsystem behind `/v1/jobs`.

use std::time::{Duration, Instant};

use serde::{json, Serialize, Value};

use crate::api::{self, ApiError, Body};
use crate::http::{Request, Response};
use crate::jobs::{JobKind, JobStatus, DEADLINE_EXCEEDED, JOB_PANICKED};
use crate::ServerState;

/// Largest client-settable `timeout_ms`: one hour. A cap (rather than
/// unbounded) keeps a typo'd `timeout_ms` from pinning a job slot for
/// days; anything longer should simply omit the field.
pub const MAX_JOB_TIMEOUT_MS: u64 = 3_600_000;

fn ok_json<T: Serialize>(value: &T) -> Response {
    Response::json(200, json::to_string(value))
}

fn err_response(e: &ApiError) -> Response {
    Response::json(e.status, e.body())
}

/// Dispatches one request against the server state.
pub fn route(state: &ServerState, req: &Request) -> Response {
    let path = req.path.trim_end_matches('/');
    let path = if path.is_empty() { "/" } else { path };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => Response::json(200, r#"{"status":"ok"}"#),
        ("GET", "/v1/stats") => ok_json(&state.stats()),
        ("GET", "/metrics") => metrics_route(state),
        ("POST", "/v1/estimate") => sync_endpoint(state, req, api::run_estimate),
        ("POST", "/v1/sweep") => sync_endpoint(state, req, api::run_sweep),
        ("POST", "/v1/mlv") => sync_endpoint(state, req, api::run_mlv),
        ("POST", "/v1/optimize") => sync_endpoint(state, req, api::run_optimize),
        ("POST", "/v1/jobs") => submit_job(state, req),
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                return match rest.split_once('/') {
                    None => job_route(state, method, rest, req),
                    Some((id, "result")) => job_result_route(state, method, id, req),
                    Some((id, "trace")) => job_trace_route(state, method, id),
                    Some(_) => err_response(&ApiError {
                        status: 404,
                        message: format!("no route for {path}"),
                    }),
                };
            }
            let known = matches!(
                path,
                "/healthz"
                    | "/v1/stats"
                    | "/metrics"
                    | "/v1/estimate"
                    | "/v1/sweep"
                    | "/v1/mlv"
                    | "/v1/optimize"
                    | "/v1/jobs"
            );
            if known {
                err_response(&ApiError {
                    status: 405,
                    message: format!("{method} not allowed on {path}"),
                })
            } else {
                err_response(&ApiError { status: 404, message: format!("no route for {path}") })
            }
        }
    }
}

/// `GET /metrics`: Prometheus text exposition. Three sections, one
/// buffer: the per-instance registry (HTTP traffic + job lifecycle),
/// hand-rendered point-in-time families (uptime, workers, queue,
/// per-instance caches labelled `cache="analysis"|"mc"`), then the
/// process-global registry (solver / cells / engine instrumentation).
fn metrics_route(state: &ServerState) -> Response {
    use nanoleak_obs::metrics::{family_header, sample_f64, sample_u64};
    let mut out = String::with_capacity(4096);
    state.telemetry.registry.render_into(&mut out);

    family_header(
        &mut out,
        "nanoleak_server_uptime_seconds",
        "gauge",
        "Seconds since the server started",
    );
    sample_f64(&mut out, "nanoleak_server_uptime_seconds", &[], state.uptime_s());
    family_header(&mut out, "nanoleak_server_workers", "gauge", "Job worker threads");
    sample_u64(&mut out, "nanoleak_server_workers", &[], state.workers() as u64);
    let (depth, capacity) = state.queue_occupancy();
    family_header(
        &mut out,
        "nanoleak_server_queue_depth",
        "gauge",
        "Jobs submitted but not yet picked up by a worker",
    );
    sample_u64(&mut out, "nanoleak_server_queue_depth", &[], depth);
    family_header(
        &mut out,
        "nanoleak_server_queue_capacity",
        "gauge",
        "Configured bound on queued jobs",
    );
    sample_u64(&mut out, "nanoleak_server_queue_capacity", &[], capacity as u64);

    // Per-instance characterization caches: the disk-backed analysis
    // memo and the RAM-only Monte-Carlo memo, as one labelled family
    // per counter (the process-global `nanoleak_cache_*` series in
    // the global registry aggregates both).
    let caches = [
        ("analysis", state.cache.stats(), state.cache.resident()),
        ("mc", state.mc_cache.stats(), state.mc_cache.resident()),
    ];
    family_header(
        &mut out,
        "nanoleak_server_cache_memory_hits_total",
        "counter",
        "Characterization requests served from process RAM",
    );
    for (label, stats, _) in &caches {
        sample_u64(
            &mut out,
            "nanoleak_server_cache_memory_hits_total",
            &[("cache", label)],
            stats.memory_hits,
        );
    }
    family_header(
        &mut out,
        "nanoleak_server_cache_disk_hits_total",
        "counter",
        "Characterization requests served from disk",
    );
    for (label, stats, _) in &caches {
        sample_u64(
            &mut out,
            "nanoleak_server_cache_disk_hits_total",
            &[("cache", label)],
            stats.disk_hits,
        );
    }
    family_header(
        &mut out,
        "nanoleak_server_cache_characterizations_total",
        "counter",
        "Characterization requests that ran the solver",
    );
    for (label, stats, _) in &caches {
        sample_u64(
            &mut out,
            "nanoleak_server_cache_characterizations_total",
            &[("cache", label)],
            stats.characterizations,
        );
    }
    family_header(&mut out, "nanoleak_server_cache_resident", "gauge", "Libraries resident in RAM");
    for (label, _, resident) in &caches {
        sample_u64(
            &mut out,
            "nanoleak_server_cache_resident",
            &[("cache", label)],
            *resident as u64,
        );
    }

    // Fault-injection hit counters (chaos drills only — the family is
    // absent in a clean process, so dashboards can alert on its mere
    // presence in production scrapes).
    let faults = nanoleak_fault::snapshot();
    if !faults.is_empty() {
        family_header(
            &mut out,
            "nanoleak_fault_injected_total",
            "counter",
            "Faults injected by armed failpoints",
        );
        for (point, hits) in &faults {
            sample_u64(
                &mut out,
                "nanoleak_fault_injected_total",
                &[("point", point.as_str())],
                *hits,
            );
        }
    }

    nanoleak_obs::global().render_into(&mut out);
    Response::text(200, out)
}

/// `GET /v1/jobs/{id}/trace`: the span tree captured while the job
/// executed. 202 with the current status until the job finishes, 404
/// for unknown ids.
fn job_trace_route(state: &ServerState, method: &str, id_raw: &str) -> Response {
    if method != "GET" {
        return err_response(&ApiError {
            status: 405,
            message: format!("{method} not allowed on job traces"),
        });
    }
    let Ok(id) = id_raw.parse::<u64>() else {
        return err_response(&ApiError::bad(format!("malformed job id '{id_raw}'")));
    };
    match state.jobs.with_job(id, |job| (job.status, job.trace.clone())) {
        None => err_response(&ApiError { status: 404, message: format!("no job {id}") }),
        Some((status, Some(trace))) => {
            let body = Value::Record(vec![
                ("id".into(), Value::Int(i128::from(id))),
                ("status".into(), Value::Str(status.name().into())),
                ("trace".into(), trace),
            ]);
            Response::json(200, json::value_to_string(&body))
        }
        Some((status, None)) => {
            // No capture yet: queued / still running (or the executor
            // died before attaching one — the status disambiguates).
            let body = Value::Record(vec![
                ("id".into(), Value::Int(i128::from(id))),
                ("status".into(), Value::Str(status.name().into())),
                ("trace".into(), Value::Unit),
            ]);
            Response::json(202, json::value_to_string(&body))
        }
    }
}

/// Runs a synchronous analysis endpoint: parse body, run, serialize.
fn sync_endpoint<T: Serialize>(
    state: &ServerState,
    req: &Request,
    run: impl FnOnce(&nanoleak_engine::MemoLibraryCache, &Body) -> Result<T, ApiError>,
) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(e) => return err_response(&ApiError { status: e.status, message: e.message }),
    };
    match Body::parse(text).and_then(|body| run(&state.cache, &body)) {
        Ok(response) => ok_json(&response),
        Err(e) => err_response(&e),
    }
}

/// How long a shed client should wait before retrying: the estimated
/// time to drain the current queue (`depth × avg job seconds /
/// workers`), clamped to `[1, 60]` seconds. Before any job has
/// finished there is no average, so the hint degrades to 1 second.
fn retry_after_seconds(state: &ServerState, depth: u64) -> u64 {
    match state.jobs.avg_job_seconds() {
        Some(avg) if avg > 0.0 => {
            let wait = depth as f64 * avg / state.workers().max(1) as f64;
            (wait.ceil() as u64).clamp(1, 60)
        }
        _ => 1,
    }
}

/// `POST /v1/jobs`: validate shape, apply admission control, register,
/// enqueue. An optional `timeout_ms` field sets the job's deadline
/// (falling back to the server's `--default-job-timeout-ms`, if any);
/// expired deadlines abort the job at the next shard boundary with a
/// `deadline_exceeded` failure. Requests that would predictably miss
/// their deadline given the current backlog are shed up front with a
/// 503 and a `Retry-After` hint, as are queue-full rejections.
fn submit_job(state: &ServerState, req: &Request) -> Response {
    let text = match req.body_text() {
        Ok(t) => t.to_string(),
        Err(e) => return err_response(&ApiError { status: e.status, message: e.message }),
    };
    let parsed = Body::parse(&text).and_then(|body| {
        let raw: String = body.get("type", "sweep".into())?;
        let kind = JobKind::parse(&raw).ok_or_else(|| {
            ApiError::bad(format!("type: expected sweep|mlv|grid|mc|optimize, got '{raw}'"))
        })?;
        let timeout_ms: Option<u64> = body.opt("timeout_ms")?;
        if let Some(ms) = timeout_ms {
            if ms == 0 || ms > MAX_JOB_TIMEOUT_MS {
                return Err(ApiError::bad(format!(
                    "timeout_ms: expected 1..={MAX_JOB_TIMEOUT_MS}, got {ms}"
                )));
            }
        }
        Ok((kind, timeout_ms))
    });
    let (kind, timeout_ms) = match parsed {
        Ok(pair) => pair,
        Err(e) => return err_response(&e),
    };
    let Some(queue) = state.queue_handle() else {
        return err_response(&ApiError { status: 503, message: "server is shutting down".into() });
    };
    let (depth, _) = state.queue_occupancy();
    // Deadline-aware shedding: if the backlog alone is predicted to
    // outlast an explicit client deadline, admitting the job would
    // just burn a worker slot computing a result nobody will read.
    // Only an *explicit* timeout_ms sheds — the server-wide default
    // is a safety net, not a latency SLO.
    if let (Some(ms), Some(avg)) = (timeout_ms, state.jobs.avg_job_seconds()) {
        let predicted_wait_s = depth as f64 * avg / state.workers().max(1) as f64;
        if predicted_wait_s * 1e3 > ms as f64 {
            state.telemetry.shed_predicted_deadline.inc();
            return err_response(&ApiError {
                status: 503,
                message: format!(
                    "predicted queue wait {:.0} ms exceeds timeout_ms {ms}",
                    predicted_wait_s * 1e3
                ),
            })
            .with_retry_after(retry_after_seconds(state, depth));
        }
    }
    let deadline = timeout_ms
        .map(Duration::from_millis)
        .or_else(|| state.default_job_timeout())
        .map(|d| Instant::now() + d);
    let (id, _) = state.jobs.submit_with_deadline(kind, text, deadline);
    if queue.enqueue(id).is_err() {
        // Registered but unplaceable: surface the backpressure and
        // mark the orphan cancelled so it never reads as pending.
        state.jobs.cancel(id);
        state.telemetry.shed_queue_full.inc();
        return err_response(&ApiError {
            status: 503,
            message: format!("job queue full ({} pending)", queue.capacity()),
        })
        .with_retry_after(retry_after_seconds(state, depth.max(queue.capacity() as u64)));
    }
    let body = Value::Record(vec![
        ("id".into(), Value::Int(i128::from(id))),
        ("status".into(), Value::Str("queued".into())),
        ("kind".into(), Value::Str(kind.name().into())),
    ]);
    Response::json(202, json::value_to_string(&body))
}

/// `GET` / `DELETE` on `/v1/jobs/{id}`. `GET ...?debug=timings`
/// appends the per-stage timing breakdown captured while the job
/// executed.
fn job_route(state: &ServerState, method: &str, id_raw: &str, req: &Request) -> Response {
    let Ok(id) = id_raw.parse::<u64>() else {
        return err_response(&ApiError::bad(format!("malformed job id '{id_raw}'")));
    };
    match method {
        "GET" => {
            let timings = req.query_param("debug") == Some("timings");
            match state.jobs.with_job(id, |job| job_body(job, timings)) {
                Some(body) => Response::json(200, json::value_to_string(&body)),
                None => err_response(&ApiError { status: 404, message: format!("no job {id}") }),
            }
        }
        "DELETE" => match state.jobs.cancel(id) {
            Some(status) => {
                let body = Value::Record(vec![
                    ("id".into(), Value::Int(i128::from(id))),
                    ("status".into(), Value::Str(status.name().into())),
                    // A running job flips to cancelled when its
                    // executor next polls the flag.
                    ("cancelling".into(), Value::Bool(status == JobStatus::Running)),
                ]);
                Response::json(200, json::value_to_string(&body))
            }
            None => err_response(&ApiError { status: 404, message: format!("no job {id}") }),
        },
        other => {
            err_response(&ApiError { status: 405, message: format!("{other} not allowed on jobs") })
        }
    }
}

/// `GET /v1/jobs/{id}/result[?shard=K]`: the final result alone, or
/// one shard's partial — the paging interface that replaces polling a
/// single giant job body for streaming jobs.
fn job_result_route(state: &ServerState, method: &str, id_raw: &str, req: &Request) -> Response {
    if method != "GET" {
        return err_response(&ApiError {
            status: 405,
            message: format!("{method} not allowed on job results"),
        });
    }
    let Ok(id) = id_raw.parse::<u64>() else {
        return err_response(&ApiError::bad(format!("malformed job id '{id_raw}'")));
    };
    let Some(shard_raw) = req.query_param("shard") else {
        // No shard: the merged final result, available once done.
        return match state.jobs.with_job(id, |job| (job.status, job.result.clone())) {
            None => err_response(&ApiError { status: 404, message: format!("no job {id}") }),
            Some((JobStatus::Done, Some(result))) => {
                let body = Value::Record(vec![
                    ("id".into(), Value::Int(i128::from(id))),
                    ("status".into(), Value::Str("done".into())),
                    ("result".into(), result),
                ]);
                Response::json(200, json::value_to_string(&body))
            }
            Some((status, _)) => err_response(&ApiError {
                status: 409,
                message: format!("job {id} is {}, not done", status.name()),
            }),
        };
    };
    let Ok(shard) = shard_raw.parse::<usize>() else {
        return err_response(&ApiError::bad(format!("malformed shard index '{shard_raw}'")));
    };
    let Some(page) = state.jobs.with_job(id, |job| {
        (job.shards_total, job.shards.get(shard).cloned().flatten(), job.shards_done(), job.status)
    }) else {
        return err_response(&ApiError { status: 404, message: format!("no job {id}") });
    };
    match page {
        (None, _, _, _) => err_response(&ApiError {
            status: 404,
            message: format!("job {id} has no shard results (not a streaming job, or not started)"),
        }),
        (Some(total), _, _, _) if shard >= total => err_response(&ApiError {
            status: 404,
            message: format!("shard {shard} out of range ({total} shards)"),
        }),
        // A terminal job will never fill the missing slot: answering
        // "pending" would make pacing clients poll forever.
        (Some(_), None, _, status @ (JobStatus::Failed | JobStatus::Cancelled)) => {
            err_response(&ApiError {
                status: 409,
                message: format!("job {id} is {}; shard {shard} was never computed", status.name()),
            })
        }
        (Some(total), None, done, _) => {
            // Declared but not yet computed: 202 tells pollers to
            // come back, with enough progress to pace themselves.
            let body = Value::Record(vec![
                ("id".into(), Value::Int(i128::from(id))),
                ("shard".into(), Value::Int(shard as i128)),
                ("status".into(), Value::Str("pending".into())),
                ("shards_done".into(), Value::Int(done as i128)),
                ("shards_total".into(), Value::Int(total as i128)),
            ]);
            Response::json(202, json::value_to_string(&body))
        }
        (Some(total), Some(partial), done, _) => {
            let body = Value::Record(vec![
                ("id".into(), Value::Int(i128::from(id))),
                ("shard".into(), Value::Int(shard as i128)),
                ("shards_done".into(), Value::Int(done as i128)),
                ("shards_total".into(), Value::Int(total as i128)),
                ("partial".into(), partial),
            ]);
            Response::json(200, json::value_to_string(&body))
        }
    }
}

/// The status body of one job; `with_timings` appends the per-stage
/// breakdown (`?debug=timings`) — `null` until the executor attaches
/// one at finish.
fn job_body(job: &crate::jobs::Job, with_timings: bool) -> Value {
    let mut fields = vec![
        ("id".into(), Value::Int(i128::from(job.id))),
        ("kind".into(), Value::Str(job.kind.name().into())),
        ("status".into(), Value::Str(job.status.name().into())),
        ("age_ms".into(), Value::F64(job.submitted.elapsed().as_secs_f64() * 1e3)),
    ];
    if let Some(total) = job.shards_total {
        fields.push(("shards_total".into(), Value::Int(total as i128)));
        fields.push(("shards_done".into(), Value::Int(job.shards_done() as i128)));
    }
    if let Some(ms) = job.elapsed_ms {
        fields.push(("elapsed_ms".into(), Value::F64(ms)));
    }
    if let Some(result) = &job.result {
        fields.push(("result".into(), result.clone()));
    }
    if let Some(error) = &job.error {
        fields.push(("error".into(), Value::Str(error.clone())));
    }
    if with_timings {
        fields.push(("timings".into(), job.timings.clone().unwrap_or(Value::Unit)));
    }
    Value::Record(fields)
}

/// [`api::JobObserver`] backed by the job registry: partials land in
/// the job's shard table as they complete, and the job's cancel flag
/// — or an expired deadline — aborts the executor at the next
/// shard/cell boundary. Deadlines are only ever enforced here, at
/// unit boundaries, never inside a numeric kernel: a job that misses
/// its deadline keeps every shard it finished, bit-identical to an
/// unhurried run of the same shards.
struct RegistryObserver<'a> {
    state: &'a ServerState,
    id: u64,
    cancel: std::sync::Arc<std::sync::atomic::AtomicBool>,
    deadline: Option<Instant>,
}

impl api::JobObserver for RegistryObserver<'_> {
    fn declare(&self, total: usize) {
        self.state.jobs.set_shards_total(self.id, total);
    }

    fn unit(&self, index: usize, partial: Value) {
        self.state.jobs.put_shard(self.id, index, partial);
    }

    fn cancelled(&self) -> bool {
        self.cancel.load(std::sync::atomic::Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Runs the result serialization under a `serialize` span so it shows
/// up as its own stage in the job's trace and timing breakdown.
fn serialized(f: impl FnOnce() -> Value) -> Value {
    let _span = nanoleak_obs::span!("serialize");
    f()
}

/// One captured span as a JSON node with nested children.
fn span_node(trace: &nanoleak_obs::Trace, index: usize) -> Value {
    let span = &trace.spans[index];
    let mut fields = vec![
        ("name".into(), Value::Str(span.name.into())),
        ("start_us".into(), Value::Int(i128::from(span.start_us))),
        ("dur_us".into(), Value::Int(i128::from(span.dur_us))),
    ];
    if !span.attrs.is_empty() {
        let attrs = span.attrs.iter().map(|(k, v)| ((*k).into(), Value::Str(v.clone()))).collect();
        fields.push(("attrs".into(), Value::Record(attrs)));
    }
    let mut children: Vec<usize> =
        (0..trace.spans.len()).filter(|&i| trace.spans[i].parent == Some(span.id)).collect();
    children.sort_by_key(|&i| trace.spans[i].start_us);
    if !children.is_empty() {
        let nodes = children.into_iter().map(|i| span_node(trace, i)).collect();
        fields.push(("children".into(), Value::Seq(nodes)));
    }
    Value::Record(fields)
}

/// The span tree of one capture as the `GET /v1/jobs/{id}/trace`
/// payload. Roots are spans with no (surviving) parent — the ring
/// evicts oldest-ended spans first, and parents always end after
/// their children, so a surviving span's parent is only missing when
/// the ring overflowed (reported via `dropped`).
fn trace_value(trace: &nanoleak_obs::Trace) -> Value {
    let ids: std::collections::HashSet<u32> = trace.spans.iter().map(|s| s.id).collect();
    let mut roots: Vec<usize> = (0..trace.spans.len())
        .filter(|&i| trace.spans[i].parent.is_none_or(|p| !ids.contains(&p)))
        .collect();
    roots.sort_by_key(|&i| trace.spans[i].start_us);
    Value::Record(vec![
        ("request_id".into(), Value::Str(trace.request_id.clone())),
        ("dropped".into(), Value::Int(i128::from(trace.dropped))),
        ("spans".into(), Value::Seq(roots.into_iter().map(|i| span_node(trace, i)).collect())),
    ])
}

/// The `?debug=timings` breakdown: queue wait plus per-stage wall
/// time aggregated over *all* spans of each stage (exact even when
/// the span ring truncated). Stages a job never entered report 0.
fn timings_value(trace: &nanoleak_obs::Trace, queue_wait_ms: f64, total_ms: f64) -> Value {
    let ms = |name: &str| trace.total_us(name) as f64 / 1e3;
    Value::Record(vec![
        ("queue_wait_ms".into(), Value::F64(queue_wait_ms)),
        ("characterize_ms".into(), Value::F64(ms("characterize"))),
        ("library_ms".into(), Value::F64(ms("library"))),
        ("compile_ms".into(), Value::F64(ms("compile"))),
        ("estimate_ms".into(), Value::F64(ms("estimate"))),
        ("merge_ms".into(), Value::F64(ms("merge"))),
        ("serialize_ms".into(), Value::F64(ms("serialize"))),
        ("total_ms".into(), Value::F64(total_ms)),
    ])
}

/// Executes one dequeued job against the engine (called from worker
/// threads). Runs under a span capture rooted at `job`, with the
/// submitting request's id re-adopted so the job's logs and trace
/// correlate with the HTTP request that created it.
pub fn execute_job(state: &ServerState, id: u64) {
    let Some((kind, text, cancel)) = state.jobs.start(id) else {
        return; // cancelled while queued, or unknown
    };
    let deadline = state.jobs.with_job(id, |job| job.deadline).flatten();
    // Expired while queued: fail fast without touching the engine.
    // (If the client also cancelled, the cancel verdict wins below.)
    if deadline.is_some_and(|d| Instant::now() >= d)
        && !cancel.load(std::sync::atomic::Ordering::Relaxed)
    {
        nanoleak_obs::warn!("jobs", "job {} ({}) expired in queue", id, kind.name());
        state.jobs.finish(id, Err(DEADLINE_EXCEEDED.to_string()), 0.0);
        return;
    }
    nanoleak_obs::set_request_id(state.jobs.with_job(id, |job| job.request_id.clone()).flatten());
    let queue_wait_ms = state.jobs.queue_wait_ms(id).unwrap_or(0.0);
    nanoleak_obs::begin_capture();
    let started = std::time::Instant::now();
    let observer = RegistryObserver { state, id, cancel: cancel.clone(), deadline };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _job_span = nanoleak_obs::span!("job");
        let body = Body::parse(&text)?;
        match kind {
            JobKind::Sweep => api::run_sweep_streaming(&state.cache, &body, &observer)
                .map(|r| serialized(|| r.to_value())),
            JobKind::Mlv => api::run_mlv(&state.cache, &body).map(|r| serialized(|| r.to_value())),
            JobKind::Grid => {
                api::run_grid(&state.cache, &body, &observer).map(|r| serialized(|| r.to_value()))
            }
            // MC jobs characterize unique perturbed dies: they run
            // against the RAM-only `mc_cache` so the disk cache never
            // fills with one-shot entries and the main memo keeps its
            // warm nominal libraries.
            JobKind::Mc => {
                api::run_mc(&state.mc_cache, &body, &observer).map(|r| serialized(|| r.to_value()))
            }
            // Optimize jobs report one unit per finished round, so
            // pollers watch the objective converge live.
            JobKind::Optimize => api::run_optimize_with(&state.cache, &body, &observer)
                .map(|r| serialized(|| r.to_value())),
        }
    }));
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let trace = nanoleak_obs::end_capture();
    let result = match outcome {
        Ok(Ok(value)) => Ok(value),
        // The API layer reports a deadline-triggered abort as the same
        // 409 "job cancelled" it uses for client cancels (both ride
        // the observer's `cancelled()` poll). Disambiguate here: an
        // expired deadline with no client cancel is a deadline miss.
        Ok(Err(e))
            if e.status == 409
                && deadline.is_some_and(|d| Instant::now() >= d)
                && !cancel.load(std::sync::atomic::Ordering::Relaxed) =>
        {
            Err(DEADLINE_EXCEEDED.to_string())
        }
        Ok(Err(e)) => Err(e.message),
        // A panicking shard fails exactly this job; the worker thread
        // survives (see the pool loop's outer containment). Keep the
        // payload so operators see *what* tripped, not just that
        // something did.
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned());
            Err(match msg {
                Some(m) => format!("{JOB_PANICKED}: {m}"),
                None => JOB_PANICKED.to_string(),
            })
        }
    };
    match &result {
        Ok(_) => {
            nanoleak_obs::info!("jobs", "job {} ({}) done in {:.1} ms", id, kind.name(), elapsed_ms)
        }
        Err(message) => {
            nanoleak_obs::warn!("jobs", "job {} ({}) failed: {}", id, kind.name(), message);
        }
    }
    state.jobs.set_telemetry(
        id,
        trace_value(&trace),
        timings_value(&trace, queue_wait_ms, elapsed_ms),
    );
    state.jobs.finish(id, result, elapsed_ms);
    nanoleak_obs::set_request_id(None);
}
