//! Route dispatch: `(method, path)` → handler → [`Response`].
//!
//! Every body is JSON (structured errors included), every unknown
//! route is a JSON 404, and every handler is synchronous — the only
//! asynchronous machinery is the job subsystem behind `/v1/jobs`.

use serde::{json, Serialize, Value};

use crate::api::{self, ApiError, Body};
use crate::http::{Request, Response};
use crate::jobs::{JobKind, JobStatus};
use crate::ServerState;

fn ok_json<T: Serialize>(value: &T) -> Response {
    Response::json(200, json::to_string(value))
}

fn err_response(e: &ApiError) -> Response {
    Response::json(e.status, e.body())
}

/// Dispatches one request against the server state.
pub fn route(state: &ServerState, req: &Request) -> Response {
    let path = req.path.trim_end_matches('/');
    let path = if path.is_empty() { "/" } else { path };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => Response::json(200, r#"{"status":"ok"}"#),
        ("GET", "/v1/stats") => ok_json(&state.stats()),
        ("POST", "/v1/estimate") => sync_endpoint(state, req, api::run_estimate),
        ("POST", "/v1/sweep") => sync_endpoint(state, req, api::run_sweep),
        ("POST", "/v1/mlv") => sync_endpoint(state, req, api::run_mlv),
        ("POST", "/v1/jobs") => submit_job(state, req),
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                return match rest.split_once('/') {
                    None => job_route(state, method, rest),
                    Some((id, "result")) => job_result_route(state, method, id, req),
                    Some(_) => err_response(&ApiError {
                        status: 404,
                        message: format!("no route for {path}"),
                    }),
                };
            }
            let known = matches!(
                path,
                "/healthz" | "/v1/stats" | "/v1/estimate" | "/v1/sweep" | "/v1/mlv" | "/v1/jobs"
            );
            if known {
                err_response(&ApiError {
                    status: 405,
                    message: format!("{method} not allowed on {path}"),
                })
            } else {
                err_response(&ApiError { status: 404, message: format!("no route for {path}") })
            }
        }
    }
}

/// Runs a synchronous analysis endpoint: parse body, run, serialize.
fn sync_endpoint<T: Serialize>(
    state: &ServerState,
    req: &Request,
    run: impl FnOnce(&nanoleak_engine::MemoLibraryCache, &Body) -> Result<T, ApiError>,
) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(e) => return err_response(&ApiError { status: e.status, message: e.message }),
    };
    match Body::parse(text).and_then(|body| run(&state.cache, &body)) {
        Ok(response) => ok_json(&response),
        Err(e) => err_response(&e),
    }
}

/// `POST /v1/jobs`: validate shape, register, enqueue.
fn submit_job(state: &ServerState, req: &Request) -> Response {
    let text = match req.body_text() {
        Ok(t) => t.to_string(),
        Err(e) => return err_response(&ApiError { status: e.status, message: e.message }),
    };
    let parsed = Body::parse(&text).and_then(|body| {
        let raw: String = body.get("type", "sweep".into())?;
        JobKind::parse(&raw)
            .ok_or_else(|| ApiError::bad(format!("type: expected sweep|mlv|grid|mc, got '{raw}'")))
    });
    let kind = match parsed {
        Ok(kind) => kind,
        Err(e) => return err_response(&e),
    };
    let Some(queue) = state.queue_handle() else {
        return err_response(&ApiError { status: 503, message: "server is shutting down".into() });
    };
    let (id, _) = state.jobs.submit(kind, text);
    if queue.enqueue(id).is_err() {
        // Registered but unplaceable: surface the backpressure and
        // mark the orphan cancelled so it never reads as pending.
        state.jobs.cancel(id);
        return err_response(&ApiError {
            status: 503,
            message: format!("job queue full ({} pending)", queue.capacity()),
        });
    }
    let body = Value::Record(vec![
        ("id".into(), Value::Int(i128::from(id))),
        ("status".into(), Value::Str("queued".into())),
        ("kind".into(), Value::Str(kind.name().into())),
    ]);
    Response::json(202, json::value_to_string(&body))
}

/// `GET` / `DELETE` on `/v1/jobs/{id}`.
fn job_route(state: &ServerState, method: &str, id_raw: &str) -> Response {
    let Ok(id) = id_raw.parse::<u64>() else {
        return err_response(&ApiError::bad(format!("malformed job id '{id_raw}'")));
    };
    match method {
        "GET" => match state.jobs.with_job(id, job_body) {
            Some(body) => Response::json(200, json::value_to_string(&body)),
            None => err_response(&ApiError { status: 404, message: format!("no job {id}") }),
        },
        "DELETE" => match state.jobs.cancel(id) {
            Some(status) => {
                let body = Value::Record(vec![
                    ("id".into(), Value::Int(i128::from(id))),
                    ("status".into(), Value::Str(status.name().into())),
                    // A running job flips to cancelled when its
                    // executor next polls the flag.
                    ("cancelling".into(), Value::Bool(status == JobStatus::Running)),
                ]);
                Response::json(200, json::value_to_string(&body))
            }
            None => err_response(&ApiError { status: 404, message: format!("no job {id}") }),
        },
        other => {
            err_response(&ApiError { status: 405, message: format!("{other} not allowed on jobs") })
        }
    }
}

/// `GET /v1/jobs/{id}/result[?shard=K]`: the final result alone, or
/// one shard's partial — the paging interface that replaces polling a
/// single giant job body for streaming jobs.
fn job_result_route(state: &ServerState, method: &str, id_raw: &str, req: &Request) -> Response {
    if method != "GET" {
        return err_response(&ApiError {
            status: 405,
            message: format!("{method} not allowed on job results"),
        });
    }
    let Ok(id) = id_raw.parse::<u64>() else {
        return err_response(&ApiError::bad(format!("malformed job id '{id_raw}'")));
    };
    let Some(shard_raw) = req.query_param("shard") else {
        // No shard: the merged final result, available once done.
        return match state.jobs.with_job(id, |job| (job.status, job.result.clone())) {
            None => err_response(&ApiError { status: 404, message: format!("no job {id}") }),
            Some((JobStatus::Done, Some(result))) => {
                let body = Value::Record(vec![
                    ("id".into(), Value::Int(i128::from(id))),
                    ("status".into(), Value::Str("done".into())),
                    ("result".into(), result),
                ]);
                Response::json(200, json::value_to_string(&body))
            }
            Some((status, _)) => err_response(&ApiError {
                status: 409,
                message: format!("job {id} is {}, not done", status.name()),
            }),
        };
    };
    let Ok(shard) = shard_raw.parse::<usize>() else {
        return err_response(&ApiError::bad(format!("malformed shard index '{shard_raw}'")));
    };
    let Some(page) = state.jobs.with_job(id, |job| {
        (job.shards_total, job.shards.get(shard).cloned().flatten(), job.shards_done(), job.status)
    }) else {
        return err_response(&ApiError { status: 404, message: format!("no job {id}") });
    };
    match page {
        (None, _, _, _) => err_response(&ApiError {
            status: 404,
            message: format!("job {id} has no shard results (not a streaming job, or not started)"),
        }),
        (Some(total), _, _, _) if shard >= total => err_response(&ApiError {
            status: 404,
            message: format!("shard {shard} out of range ({total} shards)"),
        }),
        // A terminal job will never fill the missing slot: answering
        // "pending" would make pacing clients poll forever.
        (Some(_), None, _, status @ (JobStatus::Failed | JobStatus::Cancelled)) => {
            err_response(&ApiError {
                status: 409,
                message: format!("job {id} is {}; shard {shard} was never computed", status.name()),
            })
        }
        (Some(total), None, done, _) => {
            // Declared but not yet computed: 202 tells pollers to
            // come back, with enough progress to pace themselves.
            let body = Value::Record(vec![
                ("id".into(), Value::Int(i128::from(id))),
                ("shard".into(), Value::Int(shard as i128)),
                ("status".into(), Value::Str("pending".into())),
                ("shards_done".into(), Value::Int(done as i128)),
                ("shards_total".into(), Value::Int(total as i128)),
            ]);
            Response::json(202, json::value_to_string(&body))
        }
        (Some(total), Some(partial), done, _) => {
            let body = Value::Record(vec![
                ("id".into(), Value::Int(i128::from(id))),
                ("shard".into(), Value::Int(shard as i128)),
                ("shards_done".into(), Value::Int(done as i128)),
                ("shards_total".into(), Value::Int(total as i128)),
                ("partial".into(), partial),
            ]);
            Response::json(200, json::value_to_string(&body))
        }
    }
}

/// The status body of one job.
fn job_body(job: &crate::jobs::Job) -> Value {
    let mut fields = vec![
        ("id".into(), Value::Int(i128::from(job.id))),
        ("kind".into(), Value::Str(job.kind.name().into())),
        ("status".into(), Value::Str(job.status.name().into())),
        ("age_ms".into(), Value::F64(job.submitted.elapsed().as_secs_f64() * 1e3)),
    ];
    if let Some(total) = job.shards_total {
        fields.push(("shards_total".into(), Value::Int(total as i128)));
        fields.push(("shards_done".into(), Value::Int(job.shards_done() as i128)));
    }
    if let Some(ms) = job.elapsed_ms {
        fields.push(("elapsed_ms".into(), Value::F64(ms)));
    }
    if let Some(result) = &job.result {
        fields.push(("result".into(), result.clone()));
    }
    if let Some(error) = &job.error {
        fields.push(("error".into(), Value::Str(error.clone())));
    }
    Value::Record(fields)
}

/// [`api::JobObserver`] backed by the job registry: partials land in
/// the job's shard table as they complete, and the job's cancel flag
/// aborts the executor at the next shard/cell boundary.
struct RegistryObserver<'a> {
    state: &'a ServerState,
    id: u64,
    cancel: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl api::JobObserver for RegistryObserver<'_> {
    fn declare(&self, total: usize) {
        self.state.jobs.set_shards_total(self.id, total);
    }

    fn unit(&self, index: usize, partial: Value) {
        self.state.jobs.put_shard(self.id, index, partial);
    }

    fn cancelled(&self) -> bool {
        self.cancel.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Executes one dequeued job against the engine (called from worker
/// threads).
pub fn execute_job(state: &ServerState, id: u64) {
    let Some((kind, text, cancel)) = state.jobs.start(id) else {
        return; // cancelled while queued, or unknown
    };
    let started = std::time::Instant::now();
    let observer = RegistryObserver { state, id, cancel };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let body = Body::parse(&text)?;
        match kind {
            JobKind::Sweep => {
                api::run_sweep_streaming(&state.cache, &body, &observer).map(|r| r.to_value())
            }
            JobKind::Mlv => api::run_mlv(&state.cache, &body).map(|r| r.to_value()),
            JobKind::Grid => api::run_grid(&state.cache, &body, &observer).map(|r| r.to_value()),
            // MC jobs characterize unique perturbed dies: they run
            // against the RAM-only `mc_cache` so the disk cache never
            // fills with one-shot entries and the main memo keeps its
            // warm nominal libraries.
            JobKind::Mc => api::run_mc(&state.mc_cache, &body, &observer).map(|r| r.to_value()),
        }
    }));
    let result = match outcome {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(e)) => Err(e.message),
        Err(_) => Err("job panicked".to_string()),
    };
    state.jobs.finish(id, result, started.elapsed().as_secs_f64() * 1e3);
}
