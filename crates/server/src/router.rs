//! Route dispatch: `(method, path)` → handler → [`Response`].
//!
//! Every body is JSON (structured errors included), every unknown
//! route is a JSON 404, and every handler is synchronous — the only
//! asynchronous machinery is the job subsystem behind `/v1/jobs`.

use serde::{json, Serialize, Value};

use crate::api::{self, ApiError, Body};
use crate::http::{Request, Response};
use crate::jobs::{JobKind, JobStatus};
use crate::ServerState;

fn ok_json<T: Serialize>(value: &T) -> Response {
    Response::json(200, json::to_string(value))
}

fn err_response(e: &ApiError) -> Response {
    Response::json(e.status, e.body())
}

/// Dispatches one request against the server state.
pub fn route(state: &ServerState, req: &Request) -> Response {
    let path = req.path.trim_end_matches('/');
    let path = if path.is_empty() { "/" } else { path };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => Response::json(200, r#"{"status":"ok"}"#),
        ("GET", "/v1/stats") => ok_json(&state.stats()),
        ("POST", "/v1/estimate") => sync_endpoint(state, req, api::run_estimate),
        ("POST", "/v1/sweep") => sync_endpoint(state, req, api::run_sweep),
        ("POST", "/v1/mlv") => sync_endpoint(state, req, api::run_mlv),
        ("POST", "/v1/jobs") => submit_job(state, req),
        (method, path) => {
            if let Some(id) = path.strip_prefix("/v1/jobs/") {
                return job_route(state, method, id);
            }
            let known = matches!(
                path,
                "/healthz" | "/v1/stats" | "/v1/estimate" | "/v1/sweep" | "/v1/mlv" | "/v1/jobs"
            );
            if known {
                err_response(&ApiError {
                    status: 405,
                    message: format!("{method} not allowed on {path}"),
                })
            } else {
                err_response(&ApiError { status: 404, message: format!("no route for {path}") })
            }
        }
    }
}

/// Runs a synchronous analysis endpoint: parse body, run, serialize.
fn sync_endpoint<T: Serialize>(
    state: &ServerState,
    req: &Request,
    run: impl FnOnce(&nanoleak_engine::MemoLibraryCache, &Body) -> Result<T, ApiError>,
) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(e) => return err_response(&ApiError { status: e.status, message: e.message }),
    };
    match Body::parse(text).and_then(|body| run(&state.cache, &body)) {
        Ok(response) => ok_json(&response),
        Err(e) => err_response(&e),
    }
}

/// `POST /v1/jobs`: validate shape, register, enqueue.
fn submit_job(state: &ServerState, req: &Request) -> Response {
    let text = match req.body_text() {
        Ok(t) => t.to_string(),
        Err(e) => return err_response(&ApiError { status: e.status, message: e.message }),
    };
    let parsed = Body::parse(&text).and_then(|body| {
        let raw: String = body.get("type", "sweep".into())?;
        JobKind::parse(&raw)
            .ok_or_else(|| ApiError::bad(format!("type: expected sweep|mlv|grid, got '{raw}'")))
    });
    let kind = match parsed {
        Ok(kind) => kind,
        Err(e) => return err_response(&e),
    };
    let Some(queue) = state.queue_handle() else {
        return err_response(&ApiError { status: 503, message: "server is shutting down".into() });
    };
    let (id, _) = state.jobs.submit(kind, text);
    if queue.enqueue(id).is_err() {
        // Registered but unplaceable: surface the backpressure and
        // mark the orphan cancelled so it never reads as pending.
        state.jobs.cancel(id);
        return err_response(&ApiError {
            status: 503,
            message: format!("job queue full ({} pending)", queue.capacity()),
        });
    }
    let body = Value::Record(vec![
        ("id".into(), Value::Int(i128::from(id))),
        ("status".into(), Value::Str("queued".into())),
        ("kind".into(), Value::Str(kind.name().into())),
    ]);
    Response::json(202, json::value_to_string(&body))
}

/// `GET` / `DELETE` on `/v1/jobs/{id}`.
fn job_route(state: &ServerState, method: &str, id_raw: &str) -> Response {
    let Ok(id) = id_raw.parse::<u64>() else {
        return err_response(&ApiError::bad(format!("malformed job id '{id_raw}'")));
    };
    match method {
        "GET" => match state.jobs.with_job(id, job_body) {
            Some(body) => Response::json(200, json::value_to_string(&body)),
            None => err_response(&ApiError { status: 404, message: format!("no job {id}") }),
        },
        "DELETE" => match state.jobs.cancel(id) {
            Some(status) => {
                let body = Value::Record(vec![
                    ("id".into(), Value::Int(i128::from(id))),
                    ("status".into(), Value::Str(status.name().into())),
                    // A running job flips to cancelled when its
                    // executor next polls the flag.
                    ("cancelling".into(), Value::Bool(status == JobStatus::Running)),
                ]);
                Response::json(200, json::value_to_string(&body))
            }
            None => err_response(&ApiError { status: 404, message: format!("no job {id}") }),
        },
        other => {
            err_response(&ApiError { status: 405, message: format!("{other} not allowed on jobs") })
        }
    }
}

/// The status body of one job.
fn job_body(job: &crate::jobs::Job) -> Value {
    let mut fields = vec![
        ("id".into(), Value::Int(i128::from(job.id))),
        ("kind".into(), Value::Str(job.kind.name().into())),
        ("status".into(), Value::Str(job.status.name().into())),
        ("age_ms".into(), Value::F64(job.submitted.elapsed().as_secs_f64() * 1e3)),
    ];
    if let Some(ms) = job.elapsed_ms {
        fields.push(("elapsed_ms".into(), Value::F64(ms)));
    }
    if let Some(result) = &job.result {
        fields.push(("result".into(), result.clone()));
    }
    if let Some(error) = &job.error {
        fields.push(("error".into(), Value::Str(error.clone())));
    }
    Value::Record(fields)
}

/// Executes one dequeued job against the engine (called from worker
/// threads).
pub fn execute_job(state: &ServerState, id: u64) {
    let Some((kind, text, cancel)) = state.jobs.start(id) else {
        return; // cancelled while queued, or unknown
    };
    let started = std::time::Instant::now();
    let cancelled = || cancel.load(std::sync::atomic::Ordering::Relaxed);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let body = Body::parse(&text)?;
        match kind {
            JobKind::Sweep => api::run_sweep(&state.cache, &body).map(|r| r.to_value()),
            JobKind::Mlv => api::run_mlv(&state.cache, &body).map(|r| r.to_value()),
            JobKind::Grid => api::run_grid(&state.cache, &body, &cancelled).map(|r| r.to_value()),
        }
    }));
    let result = match outcome {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(e)) => Err(e.message),
        Err(_) => Err("job panicked".to_string()),
    };
    state.jobs.finish(id, result, started.elapsed().as_secs_f64() * 1e3);
}
