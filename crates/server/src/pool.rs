//! Bounded job queue feeding the worker pool.
//!
//! A [`JobQueue`] is the producer side (HTTP handlers `try_send` job
//! ids; a full queue is backpressure the client sees as 503), and a
//! [`JobReceiver`] is the consumer side shared by every worker
//! thread. Workers block on [`JobReceiver::next`]; when the queue
//! handle is dropped (graceful shutdown), already-queued jobs drain
//! and `next` then returns `None`, so the pool exits exactly after
//! finishing accepted work — the "drain, don't abort" contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use parking_lot::Mutex;

/// Producer half of the bounded queue.
#[derive(Debug, Clone)]
pub struct JobQueue {
    tx: SyncSender<u64>,
    depth: Arc<AtomicU64>,
    capacity: usize,
}

/// Consumer half, shared by all workers.
#[derive(Debug)]
pub struct JobReceiver {
    rx: Mutex<Receiver<u64>>,
    depth: Arc<AtomicU64>,
}

/// The queue is at capacity; the job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

/// Creates a queue bounded at `capacity` pending jobs.
pub fn job_queue(capacity: usize) -> (JobQueue, JobReceiver) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
    let depth = Arc::new(AtomicU64::new(0));
    (
        JobQueue { tx, depth: Arc::clone(&depth), capacity },
        JobReceiver { rx: Mutex::new(rx), depth },
    )
}

impl JobQueue {
    /// Enqueues a job id without blocking.
    ///
    /// # Errors
    /// [`QueueFull`] when `capacity` jobs are already pending.
    pub fn enqueue(&self, id: u64) -> Result<(), QueueFull> {
        // Increment before the send: a worker may pop the id the
        // instant try_send returns, and its decrement must never
        // observe a counter we haven't bumped yet (u64 underflow).
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(id) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(QueueFull)
            }
        }
    }

    /// Jobs currently waiting (not yet popped by a worker).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// The bound this queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl JobReceiver {
    /// Blocks until a job id is available. `None` means every
    /// [`JobQueue`] handle is gone and the queue is drained — the
    /// worker should exit.
    pub fn next(&self) -> Option<u64> {
        // Holding the lock while blocked in recv() is intentional:
        // idle workers serialize on the dequeue (cheap) and fan out
        // for the execution (expensive).
        let id = self.rx.lock().recv().ok()?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpressure_at_capacity() {
        let (q, rx) = job_queue(2);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.enqueue(3), Err(QueueFull));
        assert_eq!(q.depth(), 2);
        assert_eq!(rx.next(), Some(1));
        assert_eq!(q.depth(), 1);
        q.enqueue(3).unwrap();
    }

    #[test]
    fn drop_drains_then_stops() {
        let (q, rx) = job_queue(4);
        q.enqueue(7).unwrap();
        q.enqueue(8).unwrap();
        drop(q);
        assert_eq!(rx.next(), Some(7), "queued work survives the producer");
        assert_eq!(rx.next(), Some(8));
        assert_eq!(rx.next(), None, "then the pool is told to exit");
    }

    #[test]
    fn workers_share_one_receiver() {
        let (q, rx) = job_queue(64);
        for i in 0..40 {
            q.enqueue(i).unwrap();
        }
        drop(q);
        let rx = &rx;
        let seen: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(id) = rx.next() {
                            got.push(id);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort_unstable();
            all
        });
        assert_eq!(seen, (0..40).collect::<Vec<u64>>(), "each job delivered exactly once");
    }
}
