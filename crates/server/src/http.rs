//! A minimal, dependency-free HTTP/1.1 layer over [`std::net`].
//!
//! Supports what the service needs: request-line + header parsing,
//! `Content-Length` bodies, and **persistent connections** — a
//! [`Conn`] wraps one [`TcpStream`] and reads any number of requests
//! through one buffer, so bytes a client pipelined ahead of our
//! response are never dropped between requests. Keep-alive is
//! negotiated per request ([`Request::wants_keep_alive`]: HTTP/1.1
//! defaults on, HTTP/1.0 off, `Connection: close` / `keep-alive`
//! override), and the server bounds both the requests served per
//! connection and the idle gap between them (`ServeConfig`). Hard
//! limits on the header block and body size keep a misbehaving client
//! from ballooning memory, and every request is read under an
//! absolute wall-clock deadline — a slow-trickle client cannot hold a
//! handler thread past it.

use std::cell::Cell;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Largest accepted header block (request line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body in bytes.
pub const MAX_BODY: usize = 1024 * 1024;
/// Total wall-clock budget for reading one request. Enforced as a
/// deadline across every read, not per `recv` — a slow-trickle
/// client (one byte per few seconds) cannot hold a handler thread
/// past this.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// `false` only for `HTTP/1.0` (which defaults to one request per
    /// connection); `HTTP/1.1` defaults to keep-alive.
    pub http_11: bool,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad("body is not valid UTF-8"))
    }

    /// The value of one query-string parameter (`?shard=3`), or
    /// `None` when absent.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// Whether the client asked to keep the connection open:
    /// `Connection: close` always closes, `Connection: keep-alive`
    /// always keeps, otherwise the HTTP-version default applies
    /// (1.1 keeps, 1.0 closes). `close` wins over `keep-alive` when a
    /// confused client sends both tokens.
    pub fn wants_keep_alive(&self) -> bool {
        let mut close = false;
        let mut keep = false;
        if let Some(v) = self.header("connection") {
            for token in v.split(',') {
                match token.trim().to_ascii_lowercase().as_str() {
                    "close" => close = true,
                    "keep-alive" => keep = true,
                    _ => {}
                }
            }
        }
        !close && (keep || self.http_11)
    }
}

/// A protocol-level failure while reading a request; carries the
/// status code the client should see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status to report (4xx).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl HttpError {
    /// A 400 Bad Request.
    pub fn bad(message: impl Into<String>) -> Self {
        Self { status: 400, message: message.into() }
    }
}

/// Per-request read state shared between [`Conn`] and the reader it
/// feeds its `BufReader` from: an absolute deadline (re-armed as the
/// socket timeout before every `recv`), a byte budget, and whether
/// any socket bytes arrived for the current request (distinguishes an
/// idle keep-alive close from a stalled partial request).
#[derive(Debug)]
struct ReadState {
    deadline: Cell<Instant>,
    remaining: Cell<u64>,
    got_bytes: Cell<bool>,
}

/// The [`Read`] half of a [`Conn`]: enforces the deadline and budget
/// of [`ReadState`] on every socket read.
struct ConnRead<'a> {
    stream: &'a TcpStream,
    state: Rc<ReadState>,
}

impl Read for ConnRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.state.remaining.get();
        if remaining == 0 {
            return Ok(0); // budget exhausted: EOF to the parser
        }
        let cap = buf.len().min(usize::try_from(remaining).unwrap_or(usize::MAX));
        let left = self
            .state
            .deadline
            .get()
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::TimedOut, "read deadline exceeded")
            })?;
        let _ = self.stream.set_read_timeout(Some(left));
        let n = Read::read(&mut &*self.stream, &mut buf[..cap])?;
        if n > 0 {
            self.state.got_bytes.set(true);
            self.state.remaining.set(remaining - n as u64);
        }
        Ok(n)
    }
}

/// One server side of a TCP connection, able to read a sequence of
/// requests through a single persistent buffer.
///
/// The buffer outliving each request is what makes pipelining safe: a
/// client that sends request N+1 before reading response N may get
/// its bytes pulled into our buffer early, and a per-request reader
/// would drop them on return.
pub struct Conn<'a> {
    stream: &'a TcpStream,
    reader: BufReader<ConnRead<'a>>,
    state: Rc<ReadState>,
}

impl<'a> Conn<'a> {
    /// Wraps a stream. No bytes are read until
    /// [`Conn::read_request`].
    pub fn new(stream: &'a TcpStream) -> Self {
        let state = Rc::new(ReadState {
            deadline: Cell::new(Instant::now()),
            remaining: Cell::new(0),
            got_bytes: Cell::new(false),
        });
        Self {
            stream,
            reader: BufReader::new(ConnRead { stream, state: Rc::clone(&state) }),
            state,
        }
    }

    /// Reads one request, spending at most `timeout` of wall clock on
    /// it. Returns `Ok(None)` when the connection is over without an
    /// error to report: a clean EOF, or `timeout` elapsing before the
    /// first byte of a next request (the keep-alive idle deadline).
    /// A *partial* request hitting the deadline is a 408 error — the
    /// slow-loris case, distinct from simple idleness.
    pub fn read_request(&mut self, timeout: Duration) -> Result<Option<Request>, HttpError> {
        self.state.deadline.set(Instant::now() + timeout);
        // Hard byte budget for the whole request. `read_line` buffers
        // until it sees a newline; without this cap a client
        // streaming newline-free bytes would grow that buffer
        // unboundedly before the per-line length checks ever ran.
        self.state.remaining.set((MAX_HEAD + MAX_BODY + 1024) as u64);
        self.state.got_bytes.set(false);

        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) => {
                let timed_out = matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                );
                // Idle between requests (no bytes at all): a quiet
                // close, not a client error.
                if timed_out && !self.state.got_bytes.get() && line.is_empty() {
                    return Ok(None);
                }
                return Err(read_failure(&e, "request line"));
            }
        }
        if line.len() > MAX_HEAD {
            return Err(HttpError::bad("request line too long"));
        }
        let mut parts = line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(HttpError::bad("malformed request line"));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError { status: 505, message: format!("unsupported {version}") });
        }
        let http_11 = version != "HTTP/1.0";
        let method = method.to_ascii_uppercase();
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        let mut headers = Vec::new();
        let mut head_bytes = line.len();
        loop {
            let mut hline = String::new();
            match self.reader.read_line(&mut hline) {
                Ok(0) => return Err(HttpError::bad("connection closed mid-headers")),
                Ok(n) => head_bytes += n,
                Err(e) => return Err(read_failure(&e, "headers")),
            }
            if head_bytes > MAX_HEAD {
                return Err(HttpError { status: 431, message: "header block too large".into() });
            }
            let trimmed = hline.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            let Some((name, value)) = trimmed.split_once(':') else {
                return Err(HttpError::bad(format!("malformed header '{trimmed}'")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            None => 0,
            Some((_, v)) => {
                v.parse::<usize>().map_err(|_| HttpError::bad("malformed Content-Length"))?
            }
        };
        if content_length > MAX_BODY {
            return Err(HttpError { status: 413, message: "body too large".into() });
        }
        let mut body = vec![0u8; content_length];
        if content_length > 0 {
            self.reader.read_exact(&mut body).map_err(|e| match e.kind() {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                    HttpError { status: 408, message: "deadline exceeded reading body".into() }
                }
                _ => HttpError::bad("connection closed mid-body"),
            })?;
        }
        Ok(Some(Request { method, path, query, http_11, headers, body }))
    }

    /// The wrapped stream (for writing responses).
    pub fn stream(&self) -> &TcpStream {
        self.stream
    }

    /// Whether bytes a client pipelined ahead are already sitting in
    /// the parse buffer. Used by the connection loop to tell "client
    /// pipelined past the per-connection request bound" (answer 429)
    /// from a plain bound-reached close.
    pub fn has_buffered(&self) -> bool {
        !self.reader.buffer().is_empty()
    }
}

/// Maps a failed head read to the status the client should see.
fn read_failure(e: &std::io::Error, what: &str) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            HttpError { status: 408, message: format!("deadline exceeded reading {what}") }
        }
        _ => HttpError::bad(format!("could not read {what}")),
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content type (defaults to `application/json`).
    pub content_type: &'static str,
    /// Body text.
    pub body: String,
    /// Request id echoed as an `X-Request-Id` header when set (the
    /// connection loop stamps it after routing).
    pub request_id: Option<String>,
    /// Seconds for a `Retry-After` header, emitted when set (load
    /// shedding: 503 on a saturated queue, 429 on per-connection
    /// excess).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
            request_id: None,
            retry_after: None,
        }
    }

    /// A plain-text response (Prometheus exposition, health probes).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into(),
            request_id: None,
            retry_after: None,
        }
    }

    /// Stamps a `Retry-After` hint (seconds) on the response.
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// Writes `response` to the stream. `close` selects the
/// `Connection:` header the client sees — it must match what the
/// server actually does next (close the socket, or loop for another
/// request).
pub fn write_response(
    mut stream: &TcpStream,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    let request_id = match &response.request_id {
        Some(id) => format!("X-Request-Id: {id}\r\n"),
        None => String::new(),
    };
    let retry_after = match response.retry_after {
        Some(seconds) => format!("Retry-After: {seconds}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}{}Connection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        request_id,
        retry_after,
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the parser against raw bytes through a real socket pair.
    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        Conn::new(&server_side).read_request(READ_TIMEOUT)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /v1/estimate?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\n{\"a\"")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/estimate", "query string stripped");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("nope"), None);
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"{\"a\"");
        assert!(req.http_11);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn two_requests_flow_through_one_conn() {
        // Both requests are pipelined before the first read: the
        // persistent buffer must hand them over one at a time without
        // losing the second.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Conn::new(&server_side);
        let a = conn.read_request(READ_TIMEOUT).unwrap().unwrap();
        let b = conn.read_request(READ_TIMEOUT).unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(conn.read_request(READ_TIMEOUT).unwrap().is_none(), "then clean EOF");
    }

    #[test]
    fn idle_timeout_is_quiet_but_partial_request_is_408() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Connected but silent: the idle deadline closes quietly.
        let _idle_client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let got = Conn::new(&server_side).read_request(Duration::from_millis(80)).unwrap();
        assert!(got.is_none(), "idle connection closes without an error");

        // A stalled partial request is a client error, not idleness.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /healthz HTT").unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let err = Conn::new(&server_side).read_request(Duration::from_millis(80)).unwrap_err();
        assert_eq!(err.status, 408, "{err:?}");
    }

    #[test]
    fn keep_alive_negotiation() {
        let req = |version: &str, connection: Option<&str>| Request {
            method: "GET".into(),
            path: "/".into(),
            query: String::new(),
            http_11: version == "1.1",
            headers: connection.map(|c| ("connection".into(), c.into())).into_iter().collect(),
            body: Vec::new(),
        };
        assert!(req("1.1", None).wants_keep_alive(), "1.1 defaults on");
        assert!(!req("1.0", None).wants_keep_alive(), "1.0 defaults off");
        assert!(!req("1.1", Some("close")).wants_keep_alive());
        assert!(req("1.0", Some("keep-alive")).wants_keep_alive());
        assert!(req("1.0", Some("Keep-Alive")).wants_keep_alive(), "case-insensitive");
        assert!(!req("1.1", Some("keep-alive, close")).wants_keep_alive(), "close wins");
    }

    #[test]
    fn malformed_inputs_are_4xx() {
        assert_eq!(parse(b"BROKEN\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET / SMTP/1.0\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err().status,
            400
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").unwrap_err().status,
            413
        );
        assert_eq!(parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn newline_free_flood_is_bounded_and_rejected() {
        // A head with no newline at all: the read budget stops the
        // buffering and the length check rejects it — no unbounded
        // allocation.
        let mut raw = vec![b'a'; MAX_HEAD + MAX_BODY + 4096];
        raw.extend_from_slice(b"\r\n\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(err.status == 400 || err.status == 431, "{err:?}");
    }

    #[test]
    fn truncated_body_is_an_error() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("mid-body"));
    }
}
