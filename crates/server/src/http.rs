//! A minimal, dependency-free HTTP/1.1 layer over [`std::net`].
//!
//! Supports exactly what the service needs: request-line + header
//! parsing, `Content-Length` bodies, and one-shot responses
//! (`Connection: close` on every reply, so a connection carries one
//! request — the simplest model that `curl`, browsers, and raw
//! `TcpStream` clients all handle). Hard limits on the header block
//! and body size keep a misbehaving client from ballooning memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted header block (request line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body in bytes.
pub const MAX_BODY: usize = 1024 * 1024;
/// Total wall-clock budget for reading one request. Enforced as a
/// deadline across every read, not per `recv` — a slow-trickle
/// client (one byte per few seconds) cannot hold a handler thread
/// past this.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad("body is not valid UTF-8"))
    }
}

/// A protocol-level failure while reading a request; carries the
/// status code the client should see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status to report (4xx).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl HttpError {
    /// A 400 Bad Request.
    pub fn bad(message: impl Into<String>) -> Self {
        Self { status: 400, message: message.into() }
    }
}

/// A [`Read`] adapter that enforces an absolute deadline: every
/// `read` first re-arms the socket timeout to the time remaining, so
/// a slow-trickle client cannot stretch the request past
/// [`READ_TIMEOUT`] by delivering one byte per `recv`.
struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    deadline: std::time::Instant,
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self
            .deadline
            .checked_duration_since(std::time::Instant::now())
            .filter(|d| !d.is_zero())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::TimedOut, "read deadline exceeded")
            })?;
        let _ = self.stream.set_read_timeout(Some(remaining));
        Read::read(&mut &*self.stream, buf)
    }
}

/// Maps a failed head read to the status the client should see.
fn read_failure(e: &std::io::Error, what: &str) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            HttpError { status: 408, message: format!("deadline exceeded reading {what}") }
        }
        _ => HttpError::bad(format!("could not read {what}")),
    }
}

/// Reads one request from the stream. Returns `Ok(None)` on a clean
/// EOF before any bytes (client connected and went away).
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, HttpError> {
    let deadline = std::time::Instant::now() + READ_TIMEOUT;
    // Hard byte budget for the whole request. `read_line` buffers
    // until it sees a newline; without this cap a client streaming
    // newline-free bytes would grow that buffer unboundedly before
    // the per-line length checks ever ran.
    let budget = (MAX_HEAD + MAX_BODY + 1024) as u64;
    let mut reader =
        BufReader::new(Read::take(DeadlineReader { stream: &*stream, deadline }, budget));

    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(read_failure(&e, "request line")),
    }
    if line.len() > MAX_HEAD {
        return Err(HttpError::bad("request line too long"));
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError { status: 505, message: format!("unsupported {version}") });
    }
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut hline = String::new();
        match reader.read_line(&mut hline) {
            Ok(0) => return Err(HttpError::bad("connection closed mid-headers")),
            Ok(n) => head_bytes += n,
            Err(e) => return Err(read_failure(&e, "headers")),
        }
        if head_bytes > MAX_HEAD {
            return Err(HttpError { status: 431, message: "header block too large".into() });
        }
        let trimmed = hline.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HttpError::bad(format!("malformed header '{trimmed}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => {
            v.parse::<usize>().map_err(|_| HttpError::bad("malformed Content-Length"))?
        }
    };
    if content_length > MAX_BODY {
        return Err(HttpError { status: 413, message: "body too large".into() });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                HttpError { status: 408, message: "deadline exceeded reading body".into() }
            }
            _ => HttpError::bad("connection closed mid-body"),
        })?;
    }
    Ok(Some(Request { method, path, headers, body }))
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content type (defaults to `application/json`).
    pub content_type: &'static str,
    /// Body text.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self { status, content_type: "application/json", body: body.into() }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// Writes `response` to the stream (with `Connection: close`).
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the parser against raw bytes through a real socket pair.
    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /v1/estimate?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\n{\"a\"")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/estimate", "query string stripped");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_are_4xx() {
        assert_eq!(parse(b"BROKEN\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET / SMTP/1.0\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err().status,
            400
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").unwrap_err().status,
            413
        );
        assert_eq!(parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn newline_free_flood_is_bounded_and_rejected() {
        // A head with no newline at all: the take() budget stops the
        // buffering and the length check rejects it — no unbounded
        // allocation.
        let mut raw = vec![b'a'; MAX_HEAD + MAX_BODY + 4096];
        raw.extend_from_slice(b"\r\n\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(err.status == 400 || err.status == 431, "{err:?}");
    }

    #[test]
    fn truncated_body_is_an_error() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("mid-body"));
    }
}
