//! Request/response schemas of the JSON API, plus the handlers that
//! run the engine.
//!
//! Requests are parsed from the mini-serde [`Value`] tree by hand
//! (every field optional falls back to the CLI's defaults), so a
//! client can POST `{"target": "s1196"}` and nothing more. Responses
//! are built from `#[derive(Serialize)]` DTOs and encoded with the
//! JSON text codec — floats round-trip bit-exactly, which is what
//! makes the service's sweep results comparable `==` against an
//! in-process [`sweep`] call.

use std::sync::Arc;
use std::time::Instant;

use nanoleak_cells::{CellLibrary, CellType, CharacterizeOptions, OperatingPoint};
use nanoleak_core::{estimate_batch, CircuitLeakage, EstimatorMode, LoadingImpact};
use nanoleak_device::Technology;
use nanoleak_engine::exec::{par_map, resolve_threads};
use nanoleak_engine::{
    mc_streaming_mode, mlv_search, shard_count, sweep, sweep_streaming, EngineError, McMode,
    McShard, MemoLibraryCache, MlvConfig, MlvGoal, MlvStrategy, SweepConfig, SweepShard,
    SweepStats,
};
use nanoleak_netlist::bench_format::parse_bench;
use nanoleak_netlist::generate::{alu, iscas_like, multiplier};
use nanoleak_netlist::normalize::normalize;
use nanoleak_netlist::{Circuit, NetId, Pattern};
use nanoleak_opt::{optimize_with, OptimizeConfig, RoundProgress};
use nanoleak_variation::{char_opts_for, CircuitMcConfig, McSummary, VariationSigmas};
use rand::SeedableRng;
use serde::{json, Deserialize, Serialize, Value};

/// An API-level failure: HTTP status plus message, rendered as the
/// structured error body `{"error": {"code": ..., "message": ...}}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code (4xx for caller mistakes, 5xx for ours).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl ApiError {
    /// A 400 Bad Request.
    pub fn bad(message: impl Into<String>) -> Self {
        Self { status: 400, message: message.into() }
    }

    /// A 422: the request parsed but the analysis cannot run.
    pub fn unprocessable(message: impl Into<String>) -> Self {
        Self { status: 422, message: message.into() }
    }

    /// The JSON error body.
    pub fn body(&self) -> String {
        let v = Value::Record(vec![(
            "error".into(),
            Value::Record(vec![
                ("code".into(), Value::Int(i128::from(self.status))),
                ("message".into(), Value::Str(self.message.clone())),
            ]),
        )]);
        json::value_to_string(&v)
    }
}

// ---------------------------------------------------------------------
// Request parsing.
// ---------------------------------------------------------------------

/// A JSON request body, wrapped for typed field access with defaults.
#[derive(Debug)]
pub struct Body {
    fields: Vec<(String, Value)>,
}

impl Body {
    /// Parses the body text as a JSON object.
    pub fn parse(text: &str) -> Result<Self, ApiError> {
        let v = json::value_from_str(text)
            .map_err(|e| ApiError::bad(format!("malformed JSON body: {e}")))?;
        match v {
            Value::Record(fields) => Ok(Self { fields }),
            other => Err(ApiError::bad(format!("expected a JSON object, got {other:?}"))),
        }
    }

    /// Typed access to an optional field (absent and `null` are both
    /// `None`).
    pub fn opt<T: Deserialize>(&self, name: &str) -> Result<Option<T>, ApiError> {
        match self.fields.iter().find(|(n, _)| n == name) {
            None => Ok(None),
            Some((_, Value::Unit)) => Ok(None),
            Some((_, v)) => T::from_value(v)
                .map(Some)
                .map_err(|e| ApiError::bad(format!("field '{name}': {e}"))),
        }
    }

    /// Typed access with a default for absent fields.
    pub fn get<T: Deserialize>(&self, name: &str, default: T) -> Result<T, ApiError> {
        Ok(self.opt(name)?.unwrap_or(default))
    }
}

/// Resolves the request's circuit: `"bench"` (inline `.bench` text)
/// wins over `"target"` (a builtin generator name).
///
/// Unlike the CLI, the service never reads circuit files from its own
/// filesystem — an HTTP `"target"` naming a path would otherwise be a
/// read/probe oracle for anything the server process can open. Remote
/// clients ship netlists inline via `"bench"`.
pub fn resolve_circuit(body: &Body) -> Result<(String, Circuit), ApiError> {
    let target: Option<String> = body.opt("target")?;
    let bench: Option<String> = body.opt("bench")?;
    let (name, raw) = match (target, bench) {
        (_, Some(text)) => {
            let raw = parse_bench("inline", &text)
                .map_err(|e| ApiError::unprocessable(format!("bench: {e}")))?;
            ("inline".to_string(), raw)
        }
        (Some(target), None) => {
            let raw = match target.as_str() {
                "alu88" => alu(8),
                "mult88" => multiplier(8),
                other => iscas_like(other).ok_or_else(|| {
                    ApiError::unprocessable(format!(
                        "unknown circuit '{other}' (builtin names only; \
                         send file contents inline via 'bench')"
                    ))
                })?,
            };
            (target, raw)
        }
        (None, None) => return Err(ApiError::bad("missing 'target' (or inline 'bench')")),
    };
    let circuit = normalize(&raw)
        .map_err(|e| ApiError::unprocessable(format!("normalization failed: {e}")))?;
    Ok((name, circuit))
}

/// The technology named by a request (`"d25"` default, `"d50"`).
pub fn resolve_tech(body: &Body) -> Result<Technology, ApiError> {
    match body.get::<String>("tech", "d25".into())?.as_str() {
        "d25" | "D25" => Ok(Technology::d25()),
        "d50" | "D50" => Ok(Technology::d50()),
        other => Err(ApiError::bad(format!("tech: expected d25|d50, got '{other}'"))),
    }
}

/// The operating conditions of a request: `"temp"` (kelvin, default
/// 300) and `"vdd_scale"` (factor on the nominal supply, default 1.0),
/// validated and bundled as the [`OperatingPoint`] every analysis
/// characterizes through — the same derivation path the grid and MC
/// jobs use, so a single-point request and the matching grid cell name
/// the same cache entry.
pub fn resolve_operating_point(body: &Body) -> Result<OperatingPoint, ApiError> {
    let op = OperatingPoint {
        temp: body.get("temp", 300.0f64)?,
        vdd_scale: body.get("vdd_scale", 1.0f64)?,
    };
    op.validate().map_err(ApiError::bad)?;
    Ok(op)
}

/// Characterization options: the full default grid, or the coarse
/// test grid when the request sets `"coarse": true` (seconds vs.
/// milliseconds of solver work — integration tests and demos want
/// coarse).
pub fn resolve_char_opts(body: &Body) -> Result<CharacterizeOptions, ApiError> {
    if body.get("coarse", false)? {
        Ok(CharacterizeOptions::coarse(&CellType::ALL))
    } else {
        Ok(CharacterizeOptions::default())
    }
}

/// Most vectors (or MLV samples/steps) one request may ask for — a
/// remote client must not be able to pin a worker for hours.
pub const MAX_REQUEST_VECTORS: usize = 100_000;
/// Much lower vector cap for `mode: "direct"`, whose per-gate
/// transistor-level re-solve is orders of magnitude slower than the
/// LUT path — the same wall-clock budget, mode-adjusted.
pub const MAX_REQUEST_DIRECT_VECTORS: usize = 500;
/// Most worker threads one request may ask for (the engine's own
/// all-cores resolution caps at 16 too).
pub const MAX_REQUEST_THREADS: usize = 16;
/// Most hill-climb restarts one request may ask for.
pub const MAX_REQUEST_RESTARTS: usize = 256;
/// Most shard partials one streaming job may produce (each shard's
/// partial stats stay resident until the job is evicted).
pub const MAX_JOB_SHARDS: usize = 1024;

fn check_limit(name: &str, value: usize, max: usize) -> Result<usize, ApiError> {
    if value > max {
        return Err(ApiError::bad(format!("'{name}' of {value} exceeds the limit of {max}")));
    }
    Ok(value)
}

/// The `"lanes"` field shared by sweep/MLV/MC requests: `0` (auto,
/// the 64-wide block kernel), `64` (block explicitly), or `1` (the
/// scalar reference path). A throughput knob only — results are
/// bit-identical either way.
fn resolve_lanes_field(body: &Body) -> Result<usize, ApiError> {
    let lanes = body.get("lanes", 0usize)?;
    if !matches!(lanes, 0 | 1 | 64) {
        return Err(ApiError::bad(format!(
            "'lanes' must be 0 (auto), 1 (scalar), or 64 (block), got {lanes}"
        )));
    }
    Ok(lanes)
}

fn parse_mode(raw: &str) -> Result<EstimatorMode, ApiError> {
    match raw {
        "lut" => Ok(EstimatorMode::Lut),
        "noloading" => Ok(EstimatorMode::NoLoading),
        "direct" => Ok(EstimatorMode::DirectSolve),
        other => Err(ApiError::bad(format!("mode: expected lut|noloading|direct, got '{other}'"))),
    }
}

/// The sweep parameters of a request, CLI defaults applied and
/// client-controlled work bounded (the direct-solve mode gets a much
/// smaller vector budget than the LUT fast path).
pub fn resolve_sweep_config(body: &Body) -> Result<SweepConfig, ApiError> {
    let mode = parse_mode(&body.get::<String>("mode", "lut".into())?)?;
    let max_vectors = match mode {
        EstimatorMode::DirectSolve => MAX_REQUEST_DIRECT_VECTORS,
        EstimatorMode::Lut | EstimatorMode::NoLoading => MAX_REQUEST_VECTORS,
    };
    let vectors = check_limit("vectors", body.get("vectors", 100usize)?, max_vectors)?;
    if vectors == 0 {
        return Err(ApiError::bad("'vectors' must be at least 1"));
    }
    Ok(SweepConfig {
        vectors,
        seed: body.get("seed", 2005u64)?,
        threads: check_limit("threads", body.get("threads", 0usize)?, MAX_REQUEST_THREADS)?,
        mode,
        lanes: resolve_lanes_field(body)?,
    })
}

/// One shard-size field (`"shard_vectors"` on sweeps,
/// `"shard_samples"` on MC jobs): units per streamed shard (`0` =
/// monolithic), bounded so one job cannot pin [`MAX_JOB_SHARDS`]+
/// partials in the registry — a single policy shared by every
/// streaming job kind.
fn resolve_shard_field(body: &Body, field: &str, units: usize) -> Result<usize, ApiError> {
    let shard_size = body.get(field, 0usize)?;
    let shards = shard_count(units, shard_size);
    if shards > MAX_JOB_SHARDS {
        return Err(ApiError::bad(format!(
            "'{field}' of {shard_size} over {units} units yields {shards} shards, \
             exceeding the limit of {MAX_JOB_SHARDS}: every shard partial stays \
             resident in RAM until the job is evicted, so the count is bounded — \
             raise '{field}' to produce fewer, larger shards"
        )));
    }
    Ok(shard_size)
}

/// The `"shard_vectors"` field of a sweep job (see
/// [`resolve_shard_field`] for the shared bound).
pub fn resolve_shard_vectors(body: &Body, vectors: usize) -> Result<usize, ApiError> {
    resolve_shard_field(body, "shard_vectors", vectors)
}

/// Observer of a streaming job's per-unit progress (sweep shards,
/// grid cells). The job executor backs this with the job registry so
/// clients can poll progress and page partials; synchronous endpoints
/// use [`NoopObserver`].
pub trait JobObserver: Sync {
    /// Declares how many units the job will produce, before the first
    /// one runs.
    fn declare(&self, _total: usize) {}
    /// Records one finished unit's partial result.
    fn unit(&self, index: usize, partial: Value);
    /// Polled between units; `true` aborts the job.
    fn cancelled(&self) -> bool {
        false
    }
}

/// An observer that discards progress and never cancels.
pub struct NoopObserver;

impl JobObserver for NoopObserver {
    fn unit(&self, _index: usize, _partial: Value) {}
}

/// The structured 409 every executor returns when an observer aborts.
fn cancelled_error() -> ApiError {
    ApiError { status: 409, message: "job cancelled".into() }
}

/// Printable form of a pattern: primary-input bits, then `|` and the
/// DFF state bits when present. Shared by the service responses and
/// the CLI's text/JSON output, so the two transports can never
/// diverge on vector formatting.
pub fn fmt_pattern(p: &Pattern) -> String {
    let bits = |bs: &[bool]| bs.iter().map(|&b| if b { '1' } else { '0' }).collect::<String>();
    if p.states.is_empty() {
        bits(&p.pi)
    } else {
        format!("{}|{}", bits(&p.pi), bits(&p.states))
    }
}

fn library(
    cache: &MemoLibraryCache,
    tech: &Technology,
    op: &OperatingPoint,
    opts: &CharacterizeOptions,
) -> Result<Arc<CellLibrary>, ApiError> {
    cache.get_or_characterize_at(tech, op, opts).map(|(lib, _)| lib).map_err(|e| match e {
        // A solver that won't converge on a well-formed request is a
        // processing failure (422, like sweep failures), not a server
        // fault; cache/I-O breakage is genuinely ours (500). The
        // `EngineError` Display already says which stage failed.
        EngineError::Solver(_) => ApiError::unprocessable(e.to_string()),
        other => ApiError { status: 500, message: other.to_string() },
    })
}

// ---------------------------------------------------------------------
// POST /v1/estimate
// ---------------------------------------------------------------------

/// Response of `POST /v1/estimate`: mean leakage with/without loading
/// over N random vectors, mirroring the CLI's `estimate` output.
#[derive(Debug, Clone, Serialize)]
pub struct EstimateResponse {
    /// Resolved circuit name.
    pub target: String,
    /// Gate count of the normalized circuit.
    pub gates: usize,
    /// Primary input + state bit count.
    pub input_bits: usize,
    /// Vectors averaged over.
    pub vectors: usize,
    /// RNG seed.
    pub seed: u64,
    /// Temperature \[K\].
    pub temp: f64,
    /// Mean total leakage, loading modeled \[A\].
    pub mean_total_a: f64,
    /// Mean total leakage, loading ignored \[A\].
    pub mean_no_loading_a: f64,
    /// Mean leakage power at the technology's Vdd \[W\].
    pub mean_power_w: f64,
    /// Average loading impact on total leakage (fraction).
    pub loading_impact_avg: f64,
    /// Worst-vector loading impact (fraction).
    pub loading_impact_max: f64,
    /// Server-side wall clock \[ms\].
    pub elapsed_ms: f64,
}

/// Runs the estimate endpoint.
pub fn run_estimate(cache: &MemoLibraryCache, body: &Body) -> Result<EstimateResponse, ApiError> {
    let start = Instant::now();
    let (target, circuit) = resolve_circuit(body)?;
    let tech = resolve_tech(body)?;
    let op = resolve_operating_point(body)?;
    let vectors = check_limit("vectors", body.get("vectors", 100usize)?, MAX_REQUEST_VECTORS)?;
    if vectors == 0 {
        return Err(ApiError::bad("'vectors' must be at least 1"));
    }
    let seed = body.get("seed", 2005u64)?;
    let lib = library(cache, &tech, &op, &resolve_char_opts(body)?)?;

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let patterns = Pattern::random_batch(&circuit, &mut rng, vectors);
    let loaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::Lut)
        .map_err(|e| ApiError::unprocessable(format!("estimation failed: {e}")))?;
    let unloaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::NoLoading)
        .map_err(|e| ApiError::unprocessable(format!("estimation failed: {e}")))?;

    let mean =
        |rs: &[CircuitLeakage]| rs.iter().map(|r| r.total.total()).sum::<f64>() / rs.len() as f64;
    let pairs: Vec<_> = loaded.iter().cloned().zip(unloaded.iter().cloned()).collect();
    let impact = LoadingImpact::from_pairs(&pairs);

    Ok(EstimateResponse {
        target,
        gates: circuit.gate_count(),
        input_bits: circuit.inputs().len() + circuit.state_inputs().len(),
        vectors,
        seed,
        temp: op.temp,
        mean_total_a: mean(&loaded),
        mean_no_loading_a: mean(&unloaded),
        mean_power_w: mean(&loaded) * lib.tech.vdd,
        loading_impact_avg: impact.avg_total,
        loading_impact_max: impact.max_total,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

// ---------------------------------------------------------------------
// POST /v1/sweep
// ---------------------------------------------------------------------

/// Response of `POST /v1/sweep`: the full deterministic
/// [`SweepStats`] plus wall-clock telemetry.
#[derive(Debug, Clone, Serialize)]
pub struct SweepResponse {
    /// Resolved circuit name.
    pub target: String,
    /// Gate count of the normalized circuit.
    pub gates: usize,
    /// Temperature \[K\].
    pub temp: f64,
    /// The exact configuration the sweep ran with (defaults applied),
    /// sufficient to reproduce it in-process.
    pub config: SweepConfig,
    /// Shards the sweep executed in (1 = monolithic). Sharding never
    /// changes `stats` — the merge is bit-identical by construction.
    pub shards: usize,
    /// Bit-exact sweep statistics.
    pub stats: SweepStats,
    /// Minimum-leakage vector, printable form.
    pub min_vector: String,
    /// Maximum-leakage vector, printable form.
    pub max_vector: String,
    /// Server-side wall clock \[ms\].
    pub elapsed_ms: f64,
    /// Sweep throughput \[patterns/s\].
    pub patterns_per_sec: f64,
}

/// Runs the sweep endpoint (the synchronous route; the job executor
/// streams through [`run_sweep_streaming`] instead).
pub fn run_sweep(cache: &MemoLibraryCache, body: &Body) -> Result<SweepResponse, ApiError> {
    run_sweep_streaming(cache, body, &NoopObserver)
}

/// Runs a sweep in `"shard_vectors"`-sized shards, reporting each
/// shard's [`SweepShard`] partial to `observer` as it completes. The
/// merged stats in the response are bit-identical to a monolithic
/// [`sweep`] of the same config, for any shard size.
pub fn run_sweep_streaming(
    cache: &MemoLibraryCache,
    body: &Body,
    observer: &dyn JobObserver,
) -> Result<SweepResponse, ApiError> {
    let (target, circuit) = resolve_circuit(body)?;
    let tech = resolve_tech(body)?;
    let op = resolve_operating_point(body)?;
    let config = resolve_sweep_config(body)?;
    let shard_vectors = resolve_shard_vectors(body, config.vectors)?;
    let shards = shard_count(config.vectors, shard_vectors);
    observer.declare(shards);
    let lib = library(cache, &tech, &op, &resolve_char_opts(body)?)?;
    let report = sweep_streaming(&circuit, &lib, &config, shard_vectors, |partial: &SweepShard| {
        observer.unit(partial.shard, partial.to_value());
        !observer.cancelled()
    })
    .map_err(|e| ApiError::unprocessable(format!("sweep failed: {e}")))?;
    let Some(report) = report else {
        return Err(cancelled_error());
    };
    Ok(SweepResponse {
        target,
        gates: circuit.gate_count(),
        temp: op.temp,
        config,
        shards,
        min_vector: fmt_pattern(&report.stats.min.pattern),
        max_vector: fmt_pattern(&report.stats.max.pattern),
        stats: report.stats,
        elapsed_ms: report.telemetry.elapsed.as_secs_f64() * 1e3,
        patterns_per_sec: report.telemetry.patterns_per_sec,
    })
}

// ---------------------------------------------------------------------
// POST /v1/mlv
// ---------------------------------------------------------------------

/// Response of `POST /v1/mlv`: the optimal standby vector found.
#[derive(Debug, Clone, Serialize)]
pub struct MlvResponse {
    /// Resolved circuit name.
    pub target: String,
    /// Search direction (`"min"` / `"max"`).
    pub goal: String,
    /// Strategy that produced the result.
    pub strategy: String,
    /// Best vector, printable form.
    pub vector: String,
    /// Best vector as the raw pattern.
    pub pattern: Pattern,
    /// Total leakage of the vector \[A\].
    pub objective_a: f64,
    /// Subthreshold component \[A\].
    pub sub_a: f64,
    /// Gate-tunneling component \[A\].
    pub gate_a: f64,
    /// Junction BTBT component \[A\].
    pub btbt_a: f64,
    /// Estimator invocations.
    pub evaluations: u64,
    /// Accepted hill-climb moves.
    pub improving_moves: u64,
    /// Restarts executed.
    pub restarts: usize,
    /// Server-side wall clock \[ms\].
    pub elapsed_ms: f64,
}

/// The MLV-search parameters of a request (shared by `/v1/mlv` and
/// `/v1/optimize`): goal, strategy, seed, threads — CLI defaults
/// applied and client-controlled work bounded. Returns the raw goal
/// string alongside the config for response echoing.
pub fn resolve_mlv_config(body: &Body) -> Result<(String, MlvConfig), ApiError> {
    let goal_raw: String = body.get("goal", "min".into())?;
    let goal = match goal_raw.as_str() {
        "min" => MlvGoal::Min,
        "max" => MlvGoal::Max,
        other => return Err(ApiError::bad(format!("goal: expected min|max, got '{other}'"))),
    };
    let samples = check_limit("samples", body.get("samples", 1024usize)?, MAX_REQUEST_VECTORS)?;
    let restarts = check_limit("restarts", body.get("restarts", 8usize)?, MAX_REQUEST_RESTARTS)?;
    let max_steps = check_limit("max_steps", body.get("max_steps", 64usize)?, MAX_REQUEST_VECTORS)?;
    if samples == 0 || restarts == 0 {
        return Err(ApiError::bad("'samples' and 'restarts' must be at least 1"));
    }
    let strategy = match body.get::<String>("strategy", "hillclimb".into())?.as_str() {
        "hillclimb" => MlvStrategy::HillClimb { restarts, max_steps },
        "exhaustive" => MlvStrategy::Exhaustive,
        "random" => MlvStrategy::Random { samples },
        other => {
            return Err(ApiError::bad(format!(
                "strategy: expected exhaustive|random|hillclimb, got '{other}'"
            )))
        }
    };
    let config = MlvConfig {
        goal,
        strategy,
        seed: body.get("seed", 2005u64)?,
        threads: check_limit("threads", body.get("threads", 0usize)?, MAX_REQUEST_THREADS)?,
        mode: EstimatorMode::Lut,
        lanes: resolve_lanes_field(body)?,
    };
    Ok((goal_raw, config))
}

/// Runs the MLV endpoint.
pub fn run_mlv(cache: &MemoLibraryCache, body: &Body) -> Result<MlvResponse, ApiError> {
    let (target, circuit) = resolve_circuit(body)?;
    let tech = resolve_tech(body)?;
    let op = resolve_operating_point(body)?;
    let (goal_raw, config) = resolve_mlv_config(body)?;
    let lib = library(cache, &tech, &op, &resolve_char_opts(body)?)?;
    let result = mlv_search(&circuit, &lib, &config)
        .map_err(|e| ApiError::unprocessable(format!("MLV search failed: {e}")))?;
    Ok(MlvResponse {
        target,
        goal: goal_raw,
        strategy: result.telemetry.strategy.to_string(),
        vector: fmt_pattern(&result.pattern),
        pattern: result.pattern.clone(),
        objective_a: result.objective,
        sub_a: result.leakage.total.sub,
        gate_a: result.leakage.total.gate,
        btbt_a: result.leakage.total.btbt,
        evaluations: result.telemetry.evaluations,
        improving_moves: result.telemetry.improving_moves,
        restarts: result.telemetry.restarts,
        elapsed_ms: result.telemetry.elapsed.as_secs_f64() * 1e3,
    })
}

// ---------------------------------------------------------------------
// POST /v1/optimize
// ---------------------------------------------------------------------

/// Most optimization rounds one request may ask for — each round is a
/// full pin-permutation pass plus a remap pass plus an MLV re-search.
pub const MAX_REQUEST_OPT_ROUNDS: usize = 16;

/// Structured JSON form of a normalized circuit: named nets, cells in
/// gate order. This is the exact structure (the `.bench` dialect
/// cannot express a normalized circuit's DFF master/slave expansion
/// without re-normalizing it differently on import).
pub fn circuit_to_value(c: &Circuit) -> Value {
    let names = |nets: &[NetId]| {
        Value::Seq(nets.iter().map(|&n| Value::Str(c.net_name(n).to_string())).collect())
    };
    let gates = c
        .gates()
        .iter()
        .map(|g| {
            Value::Record(vec![
                ("cell".into(), Value::Str(g.cell.name().to_string())),
                ("inputs".into(), names(&g.inputs)),
                ("output".into(), Value::Str(c.net_name(g.output).to_string())),
            ])
        })
        .collect();
    Value::Record(vec![
        ("name".into(), Value::Str(c.name().to_string())),
        ("inputs".into(), names(c.inputs())),
        ("state_inputs".into(), names(c.state_inputs())),
        ("outputs".into(), names(c.outputs())),
        ("dff_d".into(), names(c.dff_d_nets())),
        ("gates".into(), Value::Seq(gates)),
    ])
}

/// One optimization round as the job-observer partial / response row.
pub fn round_to_value(r: &RoundProgress) -> Value {
    Value::Record(vec![
        ("round".into(), Value::Int(r.round as i128)),
        ("rounds_total".into(), Value::Int(r.rounds_total as i128)),
        ("accepted_permutations".into(), Value::Int(r.accepted_permutations as i128)),
        ("accepted_remaps".into(), Value::Int(r.accepted_remaps as i128)),
        ("objective_a".into(), Value::F64(r.objective_a)),
        ("baseline_a".into(), Value::F64(r.baseline_a)),
        ("evaluations".into(), Value::Int(i128::from(r.evaluations))),
    ])
}

/// Response of `POST /v1/optimize` (and the `"optimize"` job kind):
/// the leakage-optimized circuit plus the before/after report.
#[derive(Debug, Clone, Serialize)]
pub struct OptimizeResponse {
    /// Resolved circuit name.
    pub target: String,
    /// Search direction the scoring used (`"min"` / `"max"`).
    pub goal: String,
    /// MLV re-search strategy.
    pub strategy: String,
    /// Gate count going in (after normalization).
    pub gates_before: usize,
    /// Gate count of the optimized circuit.
    pub gates_after: usize,
    /// Rounds executed (≤ the configured bound).
    pub rounds_run: usize,
    /// Configured round bound.
    pub max_rounds: usize,
    /// Extreme vector of the input circuit, printable form.
    pub baseline_vector: String,
    /// Objective of the input circuit at its extreme vector \[A\].
    pub baseline_a: f64,
    /// Extreme vector of the optimized circuit, printable form.
    pub improved_vector: String,
    /// Objective of the optimized circuit at its extreme vector \[A\].
    /// Guaranteed `improved_a <= baseline_a`.
    pub improved_a: f64,
    /// Leakage power of the optimized circuit at its vector \[W\].
    pub improved_power_w: f64,
    /// Relative objective improvement (percent).
    pub improvement_percent: f64,
    /// Pin permutations accepted across all rounds.
    pub accepted_permutations: usize,
    /// De Morgan remaps accepted across all rounds.
    pub accepted_remaps: usize,
    /// Whether the canonicalization pre-pass was kept.
    pub canonicalized: bool,
    /// Double-inverter pairs removed by the kept pre-pass.
    pub inverter_pairs_removed: usize,
    /// Dead gates removed by the kept pre-pass.
    pub dead_gates_removed: usize,
    /// `true` when the input circuit was returned unchanged because
    /// no rewrite survived the final objective guard.
    pub reverted: bool,
    /// Total estimator invocations (candidates + MLV searches).
    pub evaluations: u64,
    /// Per-round progress rows.
    pub rounds: Vec<Value>,
    /// The optimized circuit as a structured netlist (see
    /// [`circuit_to_value`]).
    pub netlist: Value,
    /// Server-side wall clock \[ms\].
    pub elapsed_ms: f64,
}

/// Runs the optimize endpoint (the synchronous route; the job
/// executor streams per-round progress through [`run_optimize_with`]).
pub fn run_optimize(cache: &MemoLibraryCache, body: &Body) -> Result<OptimizeResponse, ApiError> {
    run_optimize_with(cache, body, &NoopObserver)
}

/// Runs a leakage optimization, reporting each round's
/// [`RoundProgress`] to `observer` as it completes (the declared unit
/// count is the configured round bound; early convergence leaves the
/// tail undeclared-but-absent). The observer's cancel flag is polled
/// at round boundaries.
pub fn run_optimize_with(
    cache: &MemoLibraryCache,
    body: &Body,
    observer: &dyn JobObserver,
) -> Result<OptimizeResponse, ApiError> {
    let start = Instant::now();
    let (target, circuit) = resolve_circuit(body)?;
    let tech = resolve_tech(body)?;
    let op = resolve_operating_point(body)?;
    let (goal_raw, mlv) = resolve_mlv_config(body)?;
    let max_rounds = check_limit("rounds", body.get("rounds", 4usize)?, MAX_REQUEST_OPT_ROUNDS)?;
    if max_rounds == 0 {
        return Err(ApiError::bad("'rounds' must be at least 1"));
    }
    let config = OptimizeConfig {
        mlv,
        max_rounds,
        canonicalize: body.get("canonicalize", true)?,
        permute: body.get("permute", true)?,
        remap: body.get("remap", true)?,
    };
    observer.declare(max_rounds);
    let lib = library(cache, &tech, &op, &resolve_char_opts(body)?)?;
    let result = optimize_with(&circuit, &lib, &config, |round| {
        observer.unit(round.round - 1, round_to_value(round));
        !observer.cancelled()
    })
    .map_err(|e| ApiError::unprocessable(format!("optimization failed: {e}")))?;
    let Some(result) = result else {
        return Err(cancelled_error());
    };
    let (pairs, dead) = result
        .canonical
        .as_ref()
        .map_or((0, 0), |r| (r.inverter_pairs_removed, r.dead_gates_removed));
    Ok(OptimizeResponse {
        target,
        goal: goal_raw,
        strategy: result.baseline.telemetry.strategy.to_string(),
        gates_before: result.gates_before,
        gates_after: result.gates_after,
        rounds_run: result.rounds.len(),
        max_rounds,
        baseline_vector: fmt_pattern(&result.baseline.pattern),
        baseline_a: result.baseline.objective,
        improved_vector: fmt_pattern(&result.improved.pattern),
        improved_a: result.improved.objective,
        improved_power_w: result.improved.objective * lib.tech.vdd,
        improvement_percent: result.improvement_percent(),
        accepted_permutations: result.rounds.iter().map(|r| r.accepted_permutations).sum(),
        accepted_remaps: result.rounds.iter().map(|r| r.accepted_remaps).sum(),
        canonicalized: result.canonical.is_some(),
        inverter_pairs_removed: pairs,
        dead_gates_removed: dead,
        reverted: result.reverted,
        evaluations: result.evaluations,
        rounds: result.rounds.iter().map(round_to_value).collect(),
        netlist: circuit_to_value(&result.circuit),
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

// ---------------------------------------------------------------------
// Condition-grid jobs (temperature × Vdd).
// ---------------------------------------------------------------------

/// Most grid cells a single job may request (each cell is a full
/// characterization + sweep).
pub const MAX_GRID_CELLS: usize = 256;

/// One cell of a condition-grid result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridCell {
    /// Temperature \[K\].
    pub temp: f64,
    /// Vdd scale factor applied to the technology's nominal supply.
    pub vdd_scale: f64,
    /// Supply voltage after scaling \[V\].
    pub vdd: f64,
    /// Mean total leakage over the sweep \[A\].
    pub mean_total_a: f64,
    /// Minimum total leakage over the sweep \[A\].
    pub min_total_a: f64,
    /// Maximum total leakage over the sweep \[A\].
    pub max_total_a: f64,
}

/// Result of a condition-grid job: a temps × vdd_scales matrix of
/// sweep summaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// Resolved circuit name.
    pub target: String,
    /// Temperature axis \[K\] (rows).
    pub temps: Vec<f64>,
    /// Vdd-scale axis (columns).
    pub vdd_scales: Vec<f64>,
    /// Sweep configuration shared by every cell.
    pub config: SweepConfig,
    /// Row-major cells (`temps.len() * vdd_scales.len()` entries).
    pub cells: Vec<GridCell>,
    /// Mean total leakage matrix \[A\], `matrix[ti][vi]` — the same
    /// numbers as `cells`, shaped for direct plotting.
    pub mean_total_a: Vec<Vec<f64>>,
}

/// Runs a condition-grid job: one deterministic sweep per
/// [`OperatingPoint`] cell, characterizing through the shared memo
/// cache.
///
/// The condition matrix is [`OperatingPoint::grid`] — the one shared
/// temps × vdd_scales derivation (row-major) — so a grid cell and a
/// single-point request at the same conditions name the same cache
/// entry, and no scaling arithmetic lives in this executor.
///
/// Cells are independent, so they **fan across the worker pool** in
/// parallel (row-major cell order) instead of running sequentially on
/// the one worker that popped the job — the grid's latency drops by
/// roughly the fan width. Per-cell results are reduced back in cell
/// order and each cell's sweep stats are thread-count invariant, so
/// the matrix is bit-identical to a sequential run. The observer's
/// cancel flag is polled as each cell starts; completed cells are
/// reported via [`JobObserver::unit`] for incremental paging.
pub fn run_grid(
    cache: &MemoLibraryCache,
    body: &Body,
    observer: &dyn JobObserver,
) -> Result<GridResult, ApiError> {
    let (target, circuit) = resolve_circuit(body)?;
    let tech = resolve_tech(body)?;
    let config = resolve_sweep_config(body)?;
    let opts = resolve_char_opts(body)?;
    let temps: Vec<f64> = body.get("temps", vec![300.0])?;
    let vdd_scales: Vec<f64> = body.get("vdd_scales", vec![1.0])?;
    if temps.is_empty() || vdd_scales.is_empty() {
        return Err(ApiError::bad("'temps' and 'vdd_scales' must be non-empty"));
    }
    let points = OperatingPoint::grid(&temps, &vdd_scales);
    let n_cells = points.len();
    if n_cells > MAX_GRID_CELLS {
        return Err(ApiError::bad(format!(
            "grid of {n_cells} cells exceeds the {MAX_GRID_CELLS}-cell limit"
        )));
    }
    for op in &points {
        op.validate().map_err(ApiError::bad)?;
    }
    observer.declare(n_cells);

    // Split the requested parallelism between the cell fan and each
    // cell's inner sweep (`fan × inner ≈ requested`), so a 2-cell
    // grid on 8 threads still uses all 8 instead of starving the
    // inner sweeps. Sweep stats are thread-count invariant, so the
    // split never moves a bit of the matrix.
    let requested = resolve_threads(config.threads);
    let fan = requested.min(n_cells);
    let cell_config = SweepConfig { threads: (requested / fan).max(1), ..config };
    let per_cell: Vec<Result<GridCell, ApiError>> = par_map(n_cells, fan, |i| {
        if observer.cancelled() {
            return Err(cancelled_error());
        }
        let op = points[i];
        let lib = library(cache, &tech, &op, &opts)?;
        let report = sweep(&circuit, &lib, &cell_config)
            .map_err(|e| ApiError::unprocessable(format!("sweep failed: {e}")))?;
        let cell = GridCell {
            temp: op.temp,
            vdd_scale: op.vdd_scale,
            vdd: lib.tech.vdd,
            mean_total_a: report.stats.total.mean,
            min_total_a: report.stats.total.min,
            max_total_a: report.stats.total.max,
        };
        observer.unit(i, cell.to_value());
        Ok(cell)
    });

    // Sequential cell-order reduction: the first error (in cell
    // order) wins deterministically, and rows assemble exactly as the
    // old sequential loop did.
    let mut cells = Vec::with_capacity(n_cells);
    let mut matrix: Vec<Vec<f64>> = Vec::with_capacity(temps.len());
    for (i, outcome) in per_cell.into_iter().enumerate() {
        let cell = outcome?;
        if i % vdd_scales.len() == 0 || matrix.is_empty() {
            matrix.push(Vec::with_capacity(vdd_scales.len()));
        }
        if let Some(row) = matrix.last_mut() {
            row.push(cell.mean_total_a);
        }
        cells.push(cell);
    }
    Ok(GridResult { target, temps, vdd_scales, config, cells, mean_total_a: matrix })
}

// ---------------------------------------------------------------------
// Circuit-level Monte-Carlo jobs.
// ---------------------------------------------------------------------

/// Most Monte-Carlo samples one job may request. Each sample is a
/// full characterization of a perturbed die — orders of magnitude more
/// solver work than a sweep vector — so the budget is correspondingly
/// smaller than [`MAX_REQUEST_VECTORS`].
pub const MAX_REQUEST_MC_SAMPLES: usize = 2048;

/// Response of an `"mc"` job (and of `nanoleak-cli mc --format json`):
/// the full loaded/unloaded leakage distributions of a circuit under
/// die-to-die process variation.
#[derive(Debug, Clone, Serialize)]
pub struct McResponse {
    /// Resolved circuit name.
    pub target: String,
    /// Gate count of the normalized circuit.
    pub gates: usize,
    /// Monte-Carlo samples drawn.
    pub samples: usize,
    /// Input patterns averaged per sample.
    pub vectors: usize,
    /// Perturbation-stream seed.
    pub seed: u64,
    /// Pattern-stream seed.
    pub pattern_seed: u64,
    /// Temperature \[K\].
    pub temp: f64,
    /// Vdd scale factor on the nominal supply.
    pub vdd_scale: f64,
    /// Variation magnitudes the samples were drawn with.
    pub sigmas: VariationSigmas,
    /// Shards the run executed in (1 = monolithic). Sharding never
    /// changes `summary` — the merge is bit-identical by construction.
    pub shards: usize,
    /// `true` when the request pinned the bit-exact per-die
    /// characterization path (`"exact": true`); `false` is the default
    /// delta-from-nominal fast path, whose measured deviation from the
    /// exact path rides in `summary.fast`.
    pub exact: bool,
    /// Distribution summary (loaded/unloaded statistics, shared-range
    /// histograms, Fig. 11 mean/std shifts). Bit-exact in exact mode;
    /// within the reported linearization error of it in fast mode.
    pub summary: McSummary,
    /// Server-side wall clock \[ms\].
    pub elapsed_ms: f64,
    /// Throughput \[samples/s\].
    pub samples_per_sec: f64,
}

/// The `"shard_samples"` field of an MC job (see
/// [`resolve_shard_field`] for the shared bound).
pub fn resolve_shard_samples(body: &Body, samples: usize) -> Result<usize, ApiError> {
    resolve_shard_field(body, "shard_samples", samples)
}

/// The Monte-Carlo configuration of a request: CLI defaults applied,
/// work bounded, sigma overrides honored (`"sigma_vt"` is the paper's
/// Fig. 11 sweep variable — the inter-die threshold sigma in volts).
pub fn resolve_mc_config(body: &Body, circuit: &Circuit) -> Result<CircuitMcConfig, ApiError> {
    let samples = check_limit("samples", body.get("samples", 200usize)?, MAX_REQUEST_MC_SAMPLES)?;
    let vectors = check_limit("vectors", body.get("vectors", 1usize)?, MAX_REQUEST_VECTORS)?;
    if samples == 0 || vectors == 0 {
        return Err(ApiError::bad("'samples' and 'vectors' must be at least 1"));
    }
    let mut sigmas = VariationSigmas::paper_nominal();
    if let Some(vt) = body.opt::<f64>("sigma_vt")? {
        sigmas = sigmas.with_vt_inter(vt);
    }
    if let Some(vt) = body.opt::<f64>("sigma_vt_intra")? {
        sigmas = sigmas.with_vt_intra(vt);
    }
    // Reject NaN/absurd magnitudes here, like temp/vdd_scale — a
    // poisoned sigma would otherwise NaN every draw and report the
    // garbage as a successful run.
    sigmas.validate().map_err(ApiError::bad)?;
    let seed = body.get("seed", 2005u64)?;
    Ok(CircuitMcConfig {
        samples,
        seed,
        sigmas,
        op: resolve_operating_point(body)?,
        vectors,
        // Sharing the perturbation seed keeps the request surface
        // small; an explicit "pattern_seed" decouples the two streams.
        pattern_seed: body.get("pattern_seed", seed)?,
        threads: check_limit("threads", body.get("threads", 0usize)?, MAX_REQUEST_THREADS)?,
        char_opts: char_opts_for(circuit, body.get("coarse", false)?),
        lanes: resolve_lanes_field(body)?,
    })
}

/// Runs a circuit-level Monte-Carlo job in `"shard_samples"`-sized
/// shards, reporting each shard's [`McShard`] partial to `observer` as
/// it completes. The merged summary is bit-identical to a monolithic
/// [`mc_streaming`] run of the same config, for any shard size and
/// thread count — the same contract the sweep path holds.
///
/// `cache` should be a **RAM-only** memo (the server routes MC jobs
/// through `ServerState::mc_cache`): every sample is a unique
/// perturbed die, and writing those one-shot libraries through a
/// disk-backed cache would grow it without bound.
pub fn run_mc(
    cache: &MemoLibraryCache,
    body: &Body,
    observer: &dyn JobObserver,
) -> Result<McResponse, ApiError> {
    let (target, circuit) = resolve_circuit(body)?;
    let tech = resolve_tech(body)?;
    let config = resolve_mc_config(body, &circuit)?;
    let shard_samples = resolve_shard_samples(body, config.samples)?;
    let shards = shard_count(config.samples, shard_samples);
    let exact = body.get("exact", false)?;
    observer.declare(shards);
    let report = mc_streaming_mode(
        &circuit,
        &tech,
        cache,
        &config,
        McMode::from_exact(exact),
        shard_samples,
        |partial: &McShard| {
            observer.unit(partial.shard, partial.to_value());
            !observer.cancelled()
        },
    )
    .map_err(|e| ApiError::unprocessable(format!("monte carlo failed: {e}")))?;
    let Some(report) = report else {
        return Err(cancelled_error());
    };
    Ok(McResponse {
        target,
        gates: circuit.gate_count(),
        samples: config.samples,
        vectors: config.vectors,
        seed: config.seed,
        pattern_seed: config.pattern_seed,
        temp: config.op.temp,
        vdd_scale: config.op.vdd_scale,
        sigmas: config.sigmas,
        shards,
        exact,
        summary: report.summary,
        elapsed_ms: report.telemetry.elapsed.as_secs_f64() * 1e3,
        samples_per_sec: report.telemetry.samples_per_sec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_defaults_and_overrides() {
        let b = Body::parse(r#"{"vectors": 12, "temp": 325, "seed": null}"#).unwrap();
        assert_eq!(b.get("vectors", 100usize).unwrap(), 12);
        assert_eq!(b.get("temp", 300.0).unwrap(), 325.0);
        assert_eq!(b.get("seed", 2005u64).unwrap(), 2005, "null falls back to default");
        assert_eq!(b.get("threads", 0usize).unwrap(), 0, "absent falls back to default");
        let err = b.get::<bool>("vectors", false).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("vectors"), "{}", err.message);
    }

    #[test]
    fn non_object_bodies_are_rejected() {
        assert_eq!(Body::parse("[1,2]").unwrap_err().status, 400);
        assert_eq!(Body::parse("{oops").unwrap_err().status, 400);
        let err = Body::parse(r#"{"vectors": "many"}"#)
            .and_then(|b| b.get("vectors", 100usize))
            .unwrap_err();
        assert!(err.message.contains("vectors"), "{}", err.message);
    }

    #[test]
    fn request_work_is_bounded() {
        let b = Body::parse(r#"{"vectors": 200000}"#).unwrap();
        let err = resolve_sweep_config(&b).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("limit"), "{}", err.message);
        let b = Body::parse(r#"{"vectors": 10, "threads": 500000}"#).unwrap();
        assert_eq!(resolve_sweep_config(&b).unwrap_err().status, 400);
    }

    #[test]
    fn target_never_reads_the_filesystem() {
        // Path-shaped targets are unknown builtins, not file reads —
        // no existence oracle over HTTP.
        let b = Body::parse(r#"{"target": "../../etc/secrets.bench"}"#).unwrap();
        let err = resolve_circuit(&b).unwrap_err();
        assert_eq!(err.status, 422);
        assert!(err.message.contains("builtin names only"), "{}", err.message);
    }

    #[test]
    fn circuit_resolution_errors_are_structured() {
        let b = Body::parse(r#"{"target": "nope-such-circuit"}"#).unwrap();
        let err = resolve_circuit(&b).unwrap_err();
        assert_eq!(err.status, 422);
        assert!(err.message.contains("nope-such-circuit"));
        let b = Body::parse("{}").unwrap();
        assert_eq!(resolve_circuit(&b).unwrap_err().status, 400);
    }

    #[test]
    fn inline_bench_wins_over_target() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
        let request = Value::Record(vec![
            ("target".into(), Value::Str("s838".into())),
            ("bench".into(), Value::Str(text.into())),
        ]);
        let b = Body::parse(&json::value_to_string(&request)).unwrap();
        let (name, circuit) = resolve_circuit(&b).unwrap();
        assert_eq!(name, "inline");
        assert_eq!(circuit.inputs().len(), 1);
    }

    #[test]
    fn grid_request_validation() {
        let cache = MemoLibraryCache::memory_only();
        for bad in [
            r#"{"target": "s838", "temps": []}"#,
            r#"{"target": "s838", "temps": [300], "vdd_scales": [0.0]}"#,
            r#"{"target": "s838", "temps": [-5]}"#,
        ] {
            let b = Body::parse(bad).unwrap();
            assert_eq!(run_grid(&cache, &b, &NoopObserver).unwrap_err().status, 400, "{bad}");
        }
        // Oversized grids are refused before any solver work.
        let temps: Vec<String> = (0..30).map(|i| (300 + i).to_string()).collect();
        let big = format!(
            r#"{{"target": "s838", "temps": [{}], "vdd_scales": [1,2,3,4,5,6,7,8,9]}}"#,
            temps.join(",")
        );
        let b = Body::parse(&big).unwrap();
        let err = run_grid(&cache, &b, &NoopObserver).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("cell limit"), "{}", err.message);
    }

    #[test]
    fn shard_vectors_is_bounded_and_defaults_to_monolithic() {
        let b = Body::parse(r#"{"vectors": 100}"#).unwrap();
        assert_eq!(resolve_shard_vectors(&b, 100).unwrap(), 0, "default is one shard");
        let b = Body::parse(r#"{"shard_vectors": 10}"#).unwrap();
        assert_eq!(resolve_shard_vectors(&b, 100).unwrap(), 10);
        // 100_000 vectors in shards of 1 would be 100k partials.
        let b = Body::parse(r#"{"shard_vectors": 1}"#).unwrap();
        let err = resolve_shard_vectors(&b, 100_000).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("shards"), "{}", err.message);
    }

    #[test]
    fn operating_point_resolution_defaults_and_validates() {
        let b = Body::parse("{}").unwrap();
        assert_eq!(resolve_operating_point(&b).unwrap(), OperatingPoint::default());
        let b = Body::parse(r#"{"temp": 350, "vdd_scale": 0.9}"#).unwrap();
        assert_eq!(resolve_operating_point(&b).unwrap(), OperatingPoint::new(350.0, 0.9));
        for bad in [r#"{"temp": -3}"#, r#"{"vdd_scale": 0}"#] {
            let b = Body::parse(bad).unwrap();
            assert_eq!(resolve_operating_point(&b).unwrap_err().status, 400, "{bad}");
        }
    }

    #[test]
    fn mc_request_is_bounded_and_defaults_apply() {
        let circuit = {
            let mut b = nanoleak_netlist::CircuitBuilder::new("t");
            let a = b.add_input("a");
            let y = b.add_gate(CellType::Inv, &[a], "y");
            b.mark_output(y);
            b.build().unwrap()
        };
        let b = Body::parse(r#"{"coarse": true}"#).unwrap();
        let cfg = resolve_mc_config(&b, &circuit).unwrap();
        assert_eq!((cfg.samples, cfg.vectors, cfg.seed, cfg.pattern_seed), (200, 1, 2005, 2005));
        assert_eq!(cfg.sigmas, VariationSigmas::paper_nominal());
        assert_eq!(cfg.char_opts.cells, vec![CellType::Inv], "only the circuit's cells");
        // Sigma override lands on the inter-die component.
        let b = Body::parse(r#"{"sigma_vt": 0.05, "seed": 9}"#).unwrap();
        let cfg = resolve_mc_config(&b, &circuit).unwrap();
        assert_eq!(cfg.sigmas.vt_inter, 0.05);
        assert_eq!(cfg.sigmas.vt_intra, VariationSigmas::paper_nominal().vt_intra);
        assert_eq!(cfg.pattern_seed, 9, "pattern stream follows the seed by default");
        // Non-physical sigmas are rejected like temp/vdd_scale.
        for bad in [r#"{"sigma_vt": -0.1}"#, r#"{"sigma_vt": 1e308}"#] {
            let b = Body::parse(bad).unwrap();
            assert_eq!(resolve_mc_config(&b, &circuit).unwrap_err().status, 400, "{bad}");
        }
        // Work bounds hold.
        let b = Body::parse(r#"{"samples": 1000000}"#).unwrap();
        assert_eq!(resolve_mc_config(&b, &circuit).unwrap_err().status, 400);
        let b = Body::parse(r#"{"samples": 0}"#).unwrap();
        assert_eq!(resolve_mc_config(&b, &circuit).unwrap_err().status, 400);
        // Shard bound mirrors the sweep path.
        let b = Body::parse(r#"{"shard_samples": 1}"#).unwrap();
        assert_eq!(resolve_shard_samples(&b, 2048).unwrap_err().status, 400);
        let b = Body::parse(r#"{"shard_samples": 4}"#).unwrap();
        assert_eq!(resolve_shard_samples(&b, 12).unwrap(), 4);
    }

    #[test]
    fn error_bodies_are_valid_json() {
        let e = ApiError::bad("quoted \"text\" here");
        let v = json::value_from_str(&e.body()).unwrap();
        let Value::Record(fields) = v else { panic!("not an object") };
        assert_eq!(fields[0].0, "error");
    }
}
