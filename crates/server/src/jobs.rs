//! The async job subsystem: registry, lifecycle, and cancellation.
//!
//! `POST /v1/jobs` enqueues work and returns immediately with an id;
//! `GET /v1/jobs/{id}` polls status and (when done) the result;
//! `DELETE /v1/jobs/{id}` cancels. Jobs move strictly
//! `queued → running → {done, failed}` or `{queued, running} →
//! cancelled`; a cancelled-while-queued job is skipped by the worker
//! that pops it, and a cancelled-while-running grid job stops at the
//! next cell boundary.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::Value;

/// What kind of work a job carries (the request body is re-parsed by
/// the executor; the kind routes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One deterministic pattern sweep.
    Sweep,
    /// A minimum/maximum-leakage-vector search.
    Mlv,
    /// A temperature × Vdd condition-grid of sweeps.
    Grid,
}

impl JobKind {
    /// Wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Sweep => "sweep",
            JobKind::Mlv => "mlv",
            JobKind::Grid => "grid",
        }
    }

    /// Parses the wire name.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw {
            "sweep" => Some(JobKind::Sweep),
            "mlv" => Some(JobKind::Mlv),
            "grid" => Some(JobKind::Grid),
            _ => None,
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// In the queue, not yet picked up.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobStatus {
    /// Wire name of the status.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// One job's record in the registry.
#[derive(Debug)]
pub struct Job {
    /// Job id (monotonic, process-local).
    pub id: u64,
    /// Work kind.
    pub kind: JobKind,
    /// The raw JSON request body, re-parsed by the executor.
    pub body: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Result value once `Done`.
    pub result: Option<Value>,
    /// Error message once `Failed`.
    pub error: Option<String>,
    /// Set by `DELETE`; polled by executors.
    pub cancel: Arc<AtomicBool>,
    /// When the job was submitted.
    pub submitted: Instant,
    /// Wall-clock execution time once finished \[ms\].
    pub elapsed_ms: Option<f64>,
}

/// Per-status job counts (for `/v1/stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
}

/// Thread-safe job registry.
#[derive(Debug, Default)]
pub struct JobRegistry {
    jobs: Mutex<HashMap<u64, Job>>,
    next_id: AtomicU64,
}

impl JobRegistry {
    /// Registers a new queued job, returning its id and cancel flag.
    pub fn submit(&self, kind: JobKind, body: String) -> (u64, Arc<AtomicBool>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let cancel = Arc::new(AtomicBool::new(false));
        let job = Job {
            id,
            kind,
            body,
            status: JobStatus::Queued,
            result: None,
            error: None,
            cancel: Arc::clone(&cancel),
            submitted: Instant::now(),
            elapsed_ms: None,
        };
        self.jobs.lock().insert(id, job);
        (id, cancel)
    }

    /// Reads one job's state through `f` (`None` if the id is
    /// unknown).
    pub fn with_job<T>(&self, id: u64, f: impl FnOnce(&Job) -> T) -> Option<T> {
        self.jobs.lock().get(&id).map(f)
    }

    /// Marks a queued job running, handing the executor its body and
    /// cancel flag. Returns `None` if the job was cancelled while
    /// queued (or does not exist) — the caller must skip it.
    pub fn start(&self, id: u64) -> Option<(JobKind, String, Arc<AtomicBool>)> {
        let mut jobs = self.jobs.lock();
        let job = jobs.get_mut(&id)?;
        if job.status != JobStatus::Queued {
            return None;
        }
        job.status = JobStatus::Running;
        Some((job.kind, job.body.clone(), Arc::clone(&job.cancel)))
    }

    /// Records a finished job.
    pub fn finish(&self, id: u64, outcome: Result<Value, String>, elapsed_ms: f64) {
        let mut jobs = self.jobs.lock();
        let Some(job) = jobs.get_mut(&id) else { return };
        job.elapsed_ms = Some(elapsed_ms);
        // A cancel that raced the final cell wins: the client asked
        // for the job to die and was told so.
        if job.cancel.load(Ordering::Relaxed) {
            job.status = JobStatus::Cancelled;
            return;
        }
        match outcome {
            Ok(value) => {
                job.status = JobStatus::Done;
                job.result = Some(value);
            }
            Err(message) => {
                job.status = JobStatus::Failed;
                job.error = Some(message);
            }
        }
    }

    /// Cancels a job. Queued jobs flip straight to `Cancelled`;
    /// running jobs get their flag set and flip when the executor
    /// notices. Returns the status after the cancel, or `None` for an
    /// unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let mut jobs = self.jobs.lock();
        let job = jobs.get_mut(&id)?;
        match job.status {
            JobStatus::Queued => {
                job.cancel.store(true, Ordering::Relaxed);
                job.status = JobStatus::Cancelled;
            }
            JobStatus::Running => {
                job.cancel.store(true, Ordering::Relaxed);
            }
            // Finished jobs are immutable.
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled => {}
        }
        Some(job.status)
    }

    /// Per-status counts.
    pub fn counts(&self) -> JobCounts {
        let jobs = self.jobs.lock();
        let mut c = JobCounts::default();
        for job in jobs.values() {
            match job.status {
                JobStatus::Queued => c.queued += 1,
                JobStatus::Running => c.running += 1,
                JobStatus::Done => c.done += 1,
                JobStatus::Failed => c.failed += 1,
                JobStatus::Cancelled => c.cancelled += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_queued_running_done() {
        let reg = JobRegistry::default();
        let (id, _) = reg.submit(JobKind::Sweep, "{}".into());
        assert_eq!(reg.with_job(id, |j| j.status), Some(JobStatus::Queued));
        let (kind, body, _) = reg.start(id).unwrap();
        assert_eq!(kind, JobKind::Sweep);
        assert_eq!(body, "{}");
        assert_eq!(reg.with_job(id, |j| j.status), Some(JobStatus::Running));
        reg.finish(id, Ok(Value::Int(1)), 5.0);
        assert_eq!(reg.with_job(id, |j| j.status), Some(JobStatus::Done));
        assert_eq!(reg.with_job(id, |j| j.result.clone()), Some(Some(Value::Int(1))));
        assert_eq!(reg.counts().done, 1);
    }

    #[test]
    fn cancel_while_queued_skips_execution() {
        let reg = JobRegistry::default();
        let (id, _) = reg.submit(JobKind::Grid, "{}".into());
        assert_eq!(reg.cancel(id), Some(JobStatus::Cancelled));
        assert!(reg.start(id).is_none(), "worker must skip a cancelled job");
        assert_eq!(reg.counts().cancelled, 1);
    }

    #[test]
    fn cancel_while_running_flags_and_finish_respects_it() {
        let reg = JobRegistry::default();
        let (id, cancel) = reg.submit(JobKind::Grid, "{}".into());
        reg.start(id).unwrap();
        assert_eq!(reg.cancel(id), Some(JobStatus::Running), "flip happens at executor notice");
        assert!(cancel.load(Ordering::Relaxed));
        reg.finish(id, Ok(Value::Unit), 1.0);
        assert_eq!(reg.with_job(id, |j| j.status), Some(JobStatus::Cancelled));
    }

    #[test]
    fn finished_jobs_are_immutable_to_cancel() {
        let reg = JobRegistry::default();
        let (id, _) = reg.submit(JobKind::Mlv, "{}".into());
        reg.start(id).unwrap();
        reg.finish(id, Err("boom".into()), 2.0);
        assert_eq!(reg.cancel(id), Some(JobStatus::Failed));
        assert_eq!(reg.with_job(id, |j| j.error.clone()), Some(Some("boom".into())));
    }

    #[test]
    fn unknown_ids_are_none() {
        let reg = JobRegistry::default();
        assert!(reg.with_job(99, |j| j.id).is_none());
        assert!(reg.cancel(99).is_none());
        assert!(reg.start(99).is_none());
    }

    #[test]
    fn ids_are_monotonic_from_one() {
        let reg = JobRegistry::default();
        let (a, _) = reg.submit(JobKind::Sweep, "{}".into());
        let (b, _) = reg.submit(JobKind::Sweep, "{}".into());
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [JobKind::Sweep, JobKind::Mlv, JobKind::Grid] {
            assert_eq!(JobKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(JobKind::parse("spice"), None);
    }
}
