//! The async job subsystem: registry, lifecycle, and cancellation.
//!
//! `POST /v1/jobs` enqueues work and returns immediately with an id;
//! `GET /v1/jobs/{id}` polls status (with per-shard progress for
//! streaming jobs) and (when done) the result;
//! `GET /v1/jobs/{id}/result?shard=K` pages one shard's partial; and
//! `DELETE /v1/jobs/{id}` cancels. Jobs move strictly
//! `queued → running → {done, failed}` or `{queued, running} →
//! cancelled`; a cancelled-while-queued job is skipped by the worker
//! that pops it, and a cancelled-while-running streaming job stops at
//! the next shard/cell boundary.
//!
//! The registry is **bounded**: finished jobs (done / failed /
//! cancelled) are retained up to an [`EvictionPolicy`] cap and TTL,
//! evicted oldest-finished-first — a server living through millions
//! of jobs holds a constant-size registry, not a process-lifetime
//! leak.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nanoleak_obs::{Counter, Gauge, Histogram, Registry};
use parking_lot::Mutex;
use serde::Value;

/// The error message a job fails with when its deadline expired; the
/// executor produces it, [`JobRegistry::finish`] counts it, and
/// clients match on it. Enforcement sits only at shard boundaries and
/// job lifecycle edges — never inside the kernels — so a job that
/// misses its deadline still has every completed shard's partial
/// intact.
pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";

/// Prefix of the error message a job fails with when its executor
/// panicked; the panic payload (when it is a string) follows after
/// `": "`.
pub const JOB_PANICKED: &str = "job panicked";

/// What kind of work a job carries (the request body is re-parsed by
/// the executor; the kind routes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One deterministic pattern sweep.
    Sweep,
    /// A minimum/maximum-leakage-vector search.
    Mlv,
    /// A temperature × Vdd condition-grid of sweeps.
    Grid,
    /// A circuit-level Monte-Carlo variation run.
    Mc,
    /// A leakage-aware netlist optimization run.
    Optimize,
}

impl JobKind {
    /// Wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Sweep => "sweep",
            JobKind::Mlv => "mlv",
            JobKind::Grid => "grid",
            JobKind::Mc => "mc",
            JobKind::Optimize => "optimize",
        }
    }

    /// Parses the wire name.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw {
            "sweep" => Some(JobKind::Sweep),
            "mlv" => Some(JobKind::Mlv),
            "grid" => Some(JobKind::Grid),
            "mc" => Some(JobKind::Mc),
            "optimize" => Some(JobKind::Optimize),
            _ => None,
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// In the queue, not yet picked up.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobStatus {
    /// Wire name of the status.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// One job's record in the registry.
#[derive(Debug)]
pub struct Job {
    /// Job id (monotonic, process-local).
    pub id: u64,
    /// Work kind.
    pub kind: JobKind,
    /// The raw JSON request body, re-parsed by the executor.
    pub body: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Result value once `Done`.
    pub result: Option<Value>,
    /// Error message once `Failed`.
    pub error: Option<String>,
    /// Set by `DELETE`; polled by executors.
    pub cancel: Arc<AtomicBool>,
    /// Absolute deadline; executors stop at the next shard boundary
    /// past it and the job fails with [`DEADLINE_EXCEEDED`]. `None`
    /// means unbounded.
    pub deadline: Option<Instant>,
    /// When the job was submitted.
    pub submitted: Instant,
    /// When the job reached a terminal status (drives TTL eviction).
    pub finished_at: Option<Instant>,
    /// Wall-clock execution time once finished \[ms\].
    pub elapsed_ms: Option<f64>,
    /// Shards the executor will produce (`None` until the executor
    /// declares it — non-streaming jobs never do).
    pub shards_total: Option<usize>,
    /// Per-shard partial results, indexed by shard; `None` slots are
    /// not yet computed. Served by `GET .../result?shard=K`.
    pub shards: Vec<Option<Value>>,
    /// Request id of the submitting HTTP request (stamped on the
    /// job's log records, spans, and trace).
    pub request_id: Option<String>,
    /// Span tree captured while the job executed (served by
    /// `GET /v1/jobs/{id}/trace` once finished).
    pub trace: Option<Value>,
    /// Per-stage timing breakdown (served by `?debug=timings` on the
    /// job status).
    pub timings: Option<Value>,
}

impl Job {
    /// Shards whose partial result is available.
    pub fn shards_done(&self) -> usize {
        self.shards.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the job's deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Bounds on finished-job retention.
#[derive(Debug, Clone, Copy)]
pub struct EvictionPolicy {
    /// Most finished jobs retained; beyond it the oldest-finished are
    /// evicted first.
    pub finished_cap: usize,
    /// Finished jobs older than this are evicted regardless of the
    /// cap.
    pub ttl: Duration,
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        Self { finished_cap: 512, ttl: Duration::from_secs(3600) }
    }
}

/// The registry's observable state: every count `/v1/stats` reports
/// is backed by one of these instruments, and `GET /metrics` renders
/// the *same* instruments — the two views cannot drift.
#[derive(Clone)]
pub struct JobMetrics {
    /// Jobs ever submitted.
    pub submitted: Counter,
    /// Jobs waiting in the queue.
    pub queued: Gauge,
    /// Jobs currently executing.
    pub running: Gauge,
    /// Resident jobs finished successfully.
    pub done: Gauge,
    /// Resident jobs finished with an error.
    pub failed: Gauge,
    /// Resident jobs cancelled.
    pub cancelled: Gauge,
    /// Finished jobs evicted (cap or TTL) over the registry lifetime.
    pub evicted: Counter,
    /// Jobs currently resident (all statuses).
    pub resident: Gauge,
    /// Jobs that failed because their deadline expired.
    pub deadline_exceeded: Counter,
    /// Jobs that failed because their executor panicked (the panic
    /// was contained; the worker survived).
    pub panicked: Counter,
    /// Time jobs spent queued before a worker picked them up.
    pub queue_wait_seconds: Histogram,
    /// Wall-clock job execution time.
    pub job_seconds: Histogram,
}

impl std::fmt::Debug for JobMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobMetrics").finish_non_exhaustive()
    }
}

impl JobMetrics {
    /// Handles not registered in any registry (library/test use).
    pub fn unregistered() -> Self {
        Self {
            submitted: Counter::new(),
            queued: Gauge::new(),
            running: Gauge::new(),
            done: Gauge::new(),
            failed: Gauge::new(),
            cancelled: Gauge::new(),
            evicted: Counter::new(),
            resident: Gauge::new(),
            deadline_exceeded: Counter::new(),
            panicked: Counter::new(),
            queue_wait_seconds: Histogram::new(),
            job_seconds: Histogram::new(),
        }
    }

    /// Registers the job families in `registry`.
    pub fn register(registry: &Registry) -> Self {
        const BY_STATUS: &str = "Resident jobs by lifecycle status";
        Self {
            submitted: registry.counter("nanoleak_jobs_submitted_total", "Jobs ever submitted"),
            queued: registry.gauge_with("nanoleak_jobs", BY_STATUS, &[("status", "queued")]),
            running: registry.gauge_with("nanoleak_jobs", BY_STATUS, &[("status", "running")]),
            done: registry.gauge_with("nanoleak_jobs", BY_STATUS, &[("status", "done")]),
            failed: registry.gauge_with("nanoleak_jobs", BY_STATUS, &[("status", "failed")]),
            cancelled: registry.gauge_with("nanoleak_jobs", BY_STATUS, &[("status", "cancelled")]),
            evicted: registry.counter(
                "nanoleak_jobs_evicted_total",
                "Finished jobs evicted from the registry (cap or TTL)",
            ),
            resident: registry
                .gauge("nanoleak_jobs_resident", "Jobs resident in the registry (all statuses)"),
            deadline_exceeded: registry.counter(
                "nanoleak_deadline_exceeded_total",
                "Jobs that failed because their deadline expired",
            ),
            panicked: registry.counter(
                "nanoleak_jobs_panicked_total",
                "Jobs whose executor panicked (contained; the worker survived)",
            ),
            queue_wait_seconds: registry.histogram(
                "nanoleak_job_queue_wait_seconds",
                "Time from job submission to worker pickup",
            ),
            job_seconds: registry
                .histogram("nanoleak_job_seconds", "Wall-clock job execution time"),
        }
    }

    /// The gauge tracking `status`.
    fn status_gauge(&self, status: JobStatus) -> &Gauge {
        match status {
            JobStatus::Queued => &self.queued,
            JobStatus::Running => &self.running,
            JobStatus::Done => &self.done,
            JobStatus::Failed => &self.failed,
            JobStatus::Cancelled => &self.cancelled,
        }
    }
}

/// Per-status job counts (for `/v1/stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Finished jobs evicted (cap or TTL) over the registry lifetime.
    pub evicted: u64,
    /// Jobs currently resident (all statuses).
    pub resident: u64,
    /// Jobs that failed because their deadline expired.
    pub deadline_exceeded: u64,
    /// Jobs whose executor panicked (contained).
    pub panicked: u64,
}

/// Thread-safe job registry with bounded finished-job retention.
#[derive(Debug)]
pub struct JobRegistry {
    jobs: Mutex<HashMap<u64, Job>>,
    next_id: AtomicU64,
    policy: EvictionPolicy,
    metrics: JobMetrics,
}

impl Default for JobRegistry {
    fn default() -> Self {
        Self::with_eviction(EvictionPolicy::default())
    }
}

impl JobRegistry {
    /// A registry bounded by `policy`, counting into free-standing
    /// (unregistered) instruments; see [`JobRegistry::with_metrics`].
    pub fn with_eviction(policy: EvictionPolicy) -> Self {
        Self {
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            policy: EvictionPolicy { finished_cap: policy.finished_cap.max(1), ttl: policy.ttl },
            metrics: JobMetrics::unregistered(),
        }
    }

    /// Swaps in instruments registered in a metrics registry, so job
    /// counts surface on `/metrics`. Call before any job is submitted.
    pub fn with_metrics(mut self, metrics: JobMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Evicts finished jobs past the TTL, then the oldest-finished
    /// beyond the cap. Called with the lock held at every point a job
    /// reaches a terminal status (and on submit, so an idle-then-busy
    /// server also ages out stale results).
    fn evict_locked(&self, jobs: &mut HashMap<u64, Job>) {
        let now = Instant::now();
        let mut finished: Vec<(u64, Instant)> =
            jobs.values().filter_map(|j| j.finished_at.map(|t| (j.id, t))).collect();
        let mut evicted = 0u64;
        let retire = |job: Job| {
            self.metrics.status_gauge(job.status).dec();
            self.metrics.resident.dec();
        };
        finished.retain(|(id, t)| {
            if now.saturating_duration_since(*t) > self.policy.ttl {
                if let Some(job) = jobs.remove(id) {
                    retire(job);
                    evicted += 1;
                }
                false
            } else {
                true
            }
        });
        if finished.len() > self.policy.finished_cap {
            // Oldest-finished first.
            finished.sort_by_key(|(_, t)| *t);
            for (id, _) in finished.drain(..finished.len() - self.policy.finished_cap) {
                if let Some(job) = jobs.remove(&id) {
                    retire(job);
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            self.metrics.evicted.add(evicted);
        }
    }

    /// Registers a new queued job, returning its id and cancel flag.
    pub fn submit(&self, kind: JobKind, body: String) -> (u64, Arc<AtomicBool>) {
        self.submit_with_deadline(kind, body, None)
    }

    /// [`JobRegistry::submit`] with an absolute deadline: executors
    /// stop at the first shard boundary past it and the job fails
    /// with [`DEADLINE_EXCEEDED`].
    pub fn submit_with_deadline(
        &self,
        kind: JobKind,
        body: String,
        deadline: Option<Instant>,
    ) -> (u64, Arc<AtomicBool>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let cancel = Arc::new(AtomicBool::new(false));
        let job = Job {
            id,
            kind,
            body,
            status: JobStatus::Queued,
            result: None,
            error: None,
            cancel: Arc::clone(&cancel),
            deadline,
            submitted: Instant::now(),
            finished_at: None,
            elapsed_ms: None,
            shards_total: None,
            shards: Vec::new(),
            request_id: nanoleak_obs::log::current_request_id(),
            trace: None,
            timings: None,
        };
        let mut jobs = self.jobs.lock();
        jobs.insert(id, job);
        self.metrics.submitted.inc();
        self.metrics.queued.inc();
        self.metrics.resident.inc();
        self.evict_locked(&mut jobs);
        (id, cancel)
    }

    /// Reads one job's state through `f` (`None` if the id is
    /// unknown).
    pub fn with_job<T>(&self, id: u64, f: impl FnOnce(&Job) -> T) -> Option<T> {
        self.jobs.lock().get(&id).map(f)
    }

    /// Marks a queued job running, handing the executor its body and
    /// cancel flag. Returns `None` if the job was cancelled while
    /// queued (or does not exist) — the caller must skip it.
    pub fn start(&self, id: u64) -> Option<(JobKind, String, Arc<AtomicBool>)> {
        let mut jobs = self.jobs.lock();
        let job = jobs.get_mut(&id)?;
        if job.status != JobStatus::Queued {
            return None;
        }
        job.status = JobStatus::Running;
        self.metrics.queued.dec();
        self.metrics.running.inc();
        self.metrics.queue_wait_seconds.record_duration(job.submitted.elapsed());
        Some((job.kind, job.body.clone(), Arc::clone(&job.cancel)))
    }

    /// The queue-wait of a job in milliseconds (submission to now);
    /// `None` for unknown ids.
    pub fn queue_wait_ms(&self, id: u64) -> Option<f64> {
        self.with_job(id, |job| job.submitted.elapsed().as_secs_f64() * 1e3)
    }

    /// Attaches the captured span tree and timing breakdown to a job
    /// (called by the executor just before [`JobRegistry::finish`]).
    pub fn set_telemetry(&self, id: u64, trace: Value, timings: Value) {
        let mut jobs = self.jobs.lock();
        if let Some(job) = jobs.get_mut(&id) {
            job.trace = Some(trace);
            job.timings = Some(timings);
        }
    }

    /// Declares how many shard partials the executor will produce for
    /// a streaming job (sizes the partial-result table).
    pub fn set_shards_total(&self, id: u64, total: usize) {
        let mut jobs = self.jobs.lock();
        if let Some(job) = jobs.get_mut(&id) {
            job.shards_total = Some(total);
            job.shards = vec![None; total];
        }
    }

    /// Stores one shard's partial result (out-of-range or unknown ids
    /// are ignored — the executor outlives eviction races).
    pub fn put_shard(&self, id: u64, shard: usize, partial: Value) {
        let mut jobs = self.jobs.lock();
        if let Some(job) = jobs.get_mut(&id) {
            if let Some(slot) = job.shards.get_mut(shard) {
                *slot = Some(partial);
            }
        }
    }

    /// Records a finished job.
    pub fn finish(&self, id: u64, outcome: Result<Value, String>, elapsed_ms: f64) {
        let mut jobs = self.jobs.lock();
        if let Some(job) = jobs.get_mut(&id) {
            // Terminal jobs are immutable: an executor that lost a
            // cancel race while the job was still queued (its start()
            // returned None) must not re-count or resurrect the entry
            // if it calls finish anyway.
            if matches!(job.status, JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled) {
                self.evict_locked(&mut jobs);
                return;
            }
            job.elapsed_ms = Some(elapsed_ms);
            job.finished_at = Some(Instant::now());
            if job.status == JobStatus::Running {
                self.metrics.running.dec();
                self.metrics.job_seconds.record(elapsed_ms / 1e3);
            }
            // A cancel that raced the final cell wins: the client
            // asked for the job to die and was told so.
            if job.cancel.load(Ordering::Relaxed) {
                job.status = JobStatus::Cancelled;
            } else {
                match outcome {
                    Ok(value) => {
                        job.status = JobStatus::Done;
                        job.result = Some(value);
                    }
                    Err(message) => {
                        if message == DEADLINE_EXCEEDED {
                            self.metrics.deadline_exceeded.inc();
                        } else if message.starts_with(JOB_PANICKED) {
                            self.metrics.panicked.inc();
                        }
                        job.status = JobStatus::Failed;
                        job.error = Some(message);
                    }
                }
            }
            self.metrics.status_gauge(job.status).inc();
        }
        self.evict_locked(&mut jobs);
    }

    /// Cancels a job. Queued jobs flip straight to `Cancelled`;
    /// running jobs get their flag set and flip when the executor
    /// notices. Returns the status after the cancel, or `None` for an
    /// unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let mut jobs = self.jobs.lock();
        let job = jobs.get_mut(&id)?;
        match job.status {
            JobStatus::Queued => {
                job.cancel.store(true, Ordering::Relaxed);
                job.status = JobStatus::Cancelled;
                job.finished_at = Some(Instant::now());
                self.metrics.queued.dec();
                self.metrics.cancelled.inc();
            }
            JobStatus::Running => {
                job.cancel.store(true, Ordering::Relaxed);
            }
            // Finished jobs are immutable.
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled => {}
        }
        Some(job.status)
    }

    /// Mean wall-clock execution time of finished jobs in seconds;
    /// `None` before the first job finishes. Drives the server's
    /// `Retry-After` estimates when shedding load.
    pub fn avg_job_seconds(&self) -> Option<f64> {
        let snap = self.metrics.job_seconds.snapshot();
        let count = snap.count();
        (count > 0).then(|| snap.sum / count as f64)
    }

    /// Per-status counts. Note `done`/`failed`/`cancelled` count jobs
    /// still *resident* — eviction retires old entries, and `evicted`
    /// accounts for them. Reads the same [`JobMetrics`] instruments
    /// that back `GET /metrics`, so `/v1/stats` cannot drift from the
    /// Prometheus view.
    pub fn counts(&self) -> JobCounts {
        let gauge = |g: &nanoleak_obs::Gauge| g.get().max(0) as u64;
        JobCounts {
            queued: gauge(&self.metrics.queued),
            running: gauge(&self.metrics.running),
            done: gauge(&self.metrics.done),
            failed: gauge(&self.metrics.failed),
            cancelled: gauge(&self.metrics.cancelled),
            evicted: self.metrics.evicted.get(),
            resident: gauge(&self.metrics.resident),
            deadline_exceeded: self.metrics.deadline_exceeded.get(),
            panicked: self.metrics.panicked.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_queued_running_done() {
        let reg = JobRegistry::default();
        let (id, _) = reg.submit(JobKind::Sweep, "{}".into());
        assert_eq!(reg.with_job(id, |j| j.status), Some(JobStatus::Queued));
        let (kind, body, _) = reg.start(id).unwrap();
        assert_eq!(kind, JobKind::Sweep);
        assert_eq!(body, "{}");
        assert_eq!(reg.with_job(id, |j| j.status), Some(JobStatus::Running));
        reg.finish(id, Ok(Value::Int(1)), 5.0);
        assert_eq!(reg.with_job(id, |j| j.status), Some(JobStatus::Done));
        assert_eq!(reg.with_job(id, |j| j.result.clone()), Some(Some(Value::Int(1))));
        assert_eq!(reg.counts().done, 1);
    }

    #[test]
    fn cancel_while_queued_skips_execution() {
        let reg = JobRegistry::default();
        let (id, _) = reg.submit(JobKind::Grid, "{}".into());
        assert_eq!(reg.cancel(id), Some(JobStatus::Cancelled));
        assert!(reg.start(id).is_none(), "worker must skip a cancelled job");
        assert_eq!(reg.counts().cancelled, 1);
    }

    #[test]
    fn cancel_while_running_flags_and_finish_respects_it() {
        let reg = JobRegistry::default();
        let (id, cancel) = reg.submit(JobKind::Grid, "{}".into());
        reg.start(id).unwrap();
        assert_eq!(reg.cancel(id), Some(JobStatus::Running), "flip happens at executor notice");
        assert!(cancel.load(Ordering::Relaxed));
        reg.finish(id, Ok(Value::Unit), 1.0);
        assert_eq!(reg.with_job(id, |j| j.status), Some(JobStatus::Cancelled));
    }

    #[test]
    fn finished_jobs_are_immutable_to_cancel() {
        let reg = JobRegistry::default();
        let (id, _) = reg.submit(JobKind::Mlv, "{}".into());
        reg.start(id).unwrap();
        reg.finish(id, Err("boom".into()), 2.0);
        assert_eq!(reg.cancel(id), Some(JobStatus::Failed));
        assert_eq!(reg.with_job(id, |j| j.error.clone()), Some(Some("boom".into())));
    }

    #[test]
    fn unknown_ids_are_none() {
        let reg = JobRegistry::default();
        assert!(reg.with_job(99, |j| j.id).is_none());
        assert!(reg.cancel(99).is_none());
        assert!(reg.start(99).is_none());
    }

    #[test]
    fn ids_are_monotonic_from_one() {
        let reg = JobRegistry::default();
        let (a, _) = reg.submit(JobKind::Sweep, "{}".into());
        let (b, _) = reg.submit(JobKind::Sweep, "{}".into());
        assert_eq!((a, b), (1, 2));
    }

    /// The job-result leak fix: a registry living through heavy job
    /// churn stays bounded at the finished-job cap.
    #[test]
    fn registry_stays_bounded_under_churn() {
        let reg = JobRegistry::with_eviction(EvictionPolicy {
            finished_cap: 16,
            ttl: Duration::from_secs(3600),
        });
        let mut first_id = 0;
        for i in 0..500 {
            let (id, _) = reg.submit(JobKind::Sweep, "{}".into());
            if i == 0 {
                first_id = id;
            }
            reg.start(id);
            reg.finish(id, Ok(Value::Int(i)), 1.0);
        }
        let c = reg.counts();
        assert_eq!(c.resident, 16, "resident capped: {c:?}");
        assert_eq!(c.done, 16);
        assert_eq!(c.evicted, 500 - 16);
        assert!(reg.with_job(first_id, |j| j.id).is_none(), "oldest-finished evicted first");
        // The newest finished job survives.
        let newest = reg.jobs.lock().keys().max().copied().unwrap();
        assert_eq!(reg.with_job(newest, |j| j.status), Some(JobStatus::Done));
    }

    #[test]
    fn eviction_is_oldest_first_and_spares_unfinished() {
        let reg = JobRegistry::with_eviction(EvictionPolicy {
            finished_cap: 1,
            ttl: Duration::from_secs(3600),
        });
        let (running, _) = reg.submit(JobKind::Sweep, "{}".into());
        reg.start(running);
        let (a, _) = reg.submit(JobKind::Sweep, "{}".into());
        reg.start(a);
        reg.finish(a, Ok(Value::Unit), 1.0);
        let (b, _) = reg.submit(JobKind::Sweep, "{}".into());
        reg.start(b);
        reg.finish(b, Ok(Value::Unit), 1.0);
        assert!(reg.with_job(a, |_| ()).is_none(), "older finished job evicted");
        assert!(reg.with_job(b, |_| ()).is_some(), "newer finished job retained");
        assert_eq!(
            reg.with_job(running, |j| j.status),
            Some(JobStatus::Running),
            "running jobs are never evicted"
        );
    }

    #[test]
    fn ttl_eviction_ages_out_stale_results() {
        let reg = JobRegistry::with_eviction(EvictionPolicy {
            finished_cap: 100,
            ttl: Duration::from_millis(20),
        });
        let (id, _) = reg.submit(JobKind::Sweep, "{}".into());
        reg.start(id);
        reg.finish(id, Ok(Value::Unit), 1.0);
        assert!(reg.with_job(id, |_| ()).is_some());
        std::thread::sleep(Duration::from_millis(40));
        // Any registry write triggers the sweep; a fresh submit is
        // what a busy server does constantly.
        let _ = reg.submit(JobKind::Sweep, "{}".into());
        assert!(reg.with_job(id, |_| ()).is_none(), "stale result aged out");
        assert_eq!(reg.counts().evicted, 1);
    }

    #[test]
    fn shard_partials_fill_and_report_progress() {
        let reg = JobRegistry::default();
        let (id, _) = reg.submit(JobKind::Sweep, "{}".into());
        reg.start(id);
        reg.set_shards_total(id, 3);
        assert_eq!(reg.with_job(id, Job::shards_done), Some(0));
        reg.put_shard(id, 1, Value::Int(11));
        reg.put_shard(id, 0, Value::Int(10));
        reg.put_shard(id, 7, Value::Int(99)); // out of range: ignored
        assert_eq!(reg.with_job(id, Job::shards_done), Some(2));
        assert_eq!(reg.with_job(id, |j| j.shards[1].clone()), Some(Some(Value::Int(11))));
        assert_eq!(reg.with_job(id, |j| j.shards[2].clone()), Some(None));
        assert_eq!(reg.with_job(id, |j| j.shards_total), Some(Some(3)));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [JobKind::Sweep, JobKind::Mlv, JobKind::Grid, JobKind::Mc, JobKind::Optimize] {
            assert_eq!(JobKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(JobKind::parse("spice"), None);
    }

    #[test]
    fn deadline_and_panic_failures_are_counted_separately() {
        let reg = JobRegistry::default();
        let deadline = Some(Instant::now() + Duration::from_secs(3600));
        let (a, _) = reg.submit_with_deadline(JobKind::Sweep, "{}".into(), deadline);
        assert_eq!(reg.with_job(a, |j| j.deadline), Some(deadline));
        assert_eq!(reg.with_job(a, |j| j.deadline_expired()), Some(false));
        reg.start(a);
        reg.finish(a, Err(DEADLINE_EXCEEDED.to_string()), 1.0);
        let (b, _) = reg.submit(JobKind::Sweep, "{}".into());
        assert_eq!(reg.with_job(b, |j| j.deadline), Some(None));
        reg.start(b);
        reg.finish(b, Err(format!("{JOB_PANICKED}: shard blew up")), 1.0);
        let (c, _) = reg.submit(JobKind::Sweep, "{}".into());
        reg.start(c);
        reg.finish(c, Err("plain failure".into()), 1.0);
        let counts = reg.counts();
        assert_eq!(counts.failed, 3);
        assert_eq!(counts.deadline_exceeded, 1);
        assert_eq!(counts.panicked, 1);
    }

    #[test]
    fn expired_deadlines_read_as_expired() {
        let reg = JobRegistry::default();
        let past = Some(Instant::now() - Duration::from_millis(1));
        let (id, _) = reg.submit_with_deadline(JobKind::Sweep, "{}".into(), past);
        assert_eq!(reg.with_job(id, |j| j.deadline_expired()), Some(true));
    }

    /// A cancel racing a worker's finish must settle on exactly one
    /// terminal state, every time, with the counters agreeing.
    #[test]
    fn concurrent_cancel_vs_finish_settles_one_terminal_state() {
        for _ in 0..64 {
            let reg = std::sync::Arc::new(JobRegistry::default());
            let (id, _) = reg.submit(JobKind::Sweep, "{}".into());
            reg.start(id);
            let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
            std::thread::scope(|s| {
                let (r, b) = (reg.clone(), barrier.clone());
                s.spawn(move || {
                    b.wait();
                    r.cancel(id);
                });
                let (r, b) = (reg.clone(), barrier.clone());
                s.spawn(move || {
                    b.wait();
                    r.finish(id, Ok(Value::Int(1)), 1.0);
                });
            });
            let status = reg.with_job(id, |j| j.status).unwrap();
            assert!(
                matches!(status, JobStatus::Done | JobStatus::Cancelled),
                "non-terminal after race: {status:?}"
            );
            let counts = reg.counts();
            assert_eq!(counts.done + counts.cancelled, 1, "double-counted: {counts:?}");
            // A cancelled job must never expose a result.
            if status == JobStatus::Cancelled {
                assert_eq!(reg.with_job(id, |j| j.result.clone()), Some(None));
            }
        }
    }

    /// Submit/finish churn (which drives eviction) racing cancels and
    /// reads of arbitrary ids: no deadlock, no panic, bounded
    /// registry, coherent counters.
    #[test]
    fn concurrent_churn_eviction_and_cancels_stay_coherent() {
        let reg = std::sync::Arc::new(JobRegistry::with_eviction(EvictionPolicy {
            finished_cap: 8,
            ttl: Duration::from_secs(3600),
        }));
        std::thread::scope(|s| {
            for t in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        let (id, _) = reg.submit(JobKind::Sweep, "{}".into());
                        match (i + t) % 3 {
                            0 => {
                                reg.cancel(id);
                            }
                            1 => {
                                reg.start(id);
                                reg.finish(id, Ok(Value::Int(i as i128)), 0.1);
                            }
                            _ => {
                                reg.start(id);
                                reg.finish(id, Err("boom".into()), 0.1);
                            }
                        }
                        // Poke a neighbour that may be mid-flight or
                        // already evicted on another thread.
                        let _ = reg.with_job(id.saturating_sub(1), |j| j.status);
                        let _ = reg.cancel(id.saturating_sub(2));
                    }
                });
            }
        });
        // Eviction runs on finish, not on cancel, so trailing cancels
        // can leave a few extra residents; one more finish sweeps
        // them. (A live server finishes jobs constantly.)
        let (id, _) = reg.submit(JobKind::Sweep, "{}".into());
        reg.start(id);
        reg.finish(id, Ok(Value::Int(0)), 0.1);
        let counts = reg.counts();
        // Status gauges count *resident* jobs; every submitted job
        // must be accounted exactly once — terminal or evicted.
        assert_eq!(counts.queued, 0, "{counts:?}");
        assert_eq!(counts.running, 0, "{counts:?}");
        assert_eq!(
            counts.done + counts.failed + counts.cancelled + counts.evicted,
            801,
            "{counts:?}"
        );
        assert!(counts.resident <= 8, "unbounded: {counts:?}");
    }

    /// Ids stay unique and dense under concurrent submission.
    #[test]
    fn concurrent_submissions_mint_unique_ids() {
        let reg = std::sync::Arc::new(JobRegistry::default());
        let mut all = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let reg = reg.clone();
                    s.spawn(move || {
                        (0..100).map(|_| reg.submit(JobKind::Mc, "{}".into()).0).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect::<Vec<u64>>()
        });
        all.sort_unstable();
        let n = all.len();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate job ids minted");
        assert_eq!(all.last().copied().unwrap() - all.first().copied().unwrap() + 1, n as u64);
    }
}
