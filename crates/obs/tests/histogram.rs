//! Histogram contract tests: bucket-boundary placement, merge
//! associativity, empty-snapshot encoding, and full-`f64`-range
//! bucket placement (proptest).

use nanoleak_obs::{bucket_bound, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
use proptest::prelude::*;

/// Reference bucketing: the first bucket whose upper bound admits `v`
/// under Prometheus `le` (less-or-equal) semantics.
fn reference_bucket(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    (0..BUCKETS).find(|&i| v <= bucket_bound(i)).expect("last bound is +Inf")
}

#[test]
fn bounds_are_strictly_increasing_powers_of_two() {
    for i in 1..BUCKETS - 1 {
        assert!(bucket_bound(i) > bucket_bound(i - 1));
        assert_eq!(bucket_bound(i) / bucket_bound(i - 1), 2.0);
    }
    assert!(bucket_bound(BUCKETS - 1).is_infinite());
}

#[test]
fn exact_bounds_land_in_their_own_bucket() {
    for i in 0..BUCKETS - 1 {
        let b = bucket_bound(i);
        assert_eq!(bucket_index(b), i, "bound {b} of bucket {i}");
        // The next representable value belongs to the next bucket.
        let above = f64::from_bits(b.to_bits() + 1);
        assert_eq!(bucket_index(above), i + 1, "just above bound {b}");
    }
}

#[test]
fn edge_values_are_total() {
    assert_eq!(bucket_index(0.0), 0);
    assert_eq!(bucket_index(-1.0), 0);
    assert_eq!(bucket_index(f64::NAN), 0);
    assert_eq!(bucket_index(f64::NEG_INFINITY), 0);
    assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), 0); // subnormal
    assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
    assert_eq!(bucket_index(f64::MAX), BUCKETS - 1);
}

#[test]
fn merge_is_associative_and_has_identity() {
    let mk = |values: &[f64]| {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    };
    let a = mk(&[1e-9, 0.5, 3.0]);
    let b = mk(&[2.0, 2.0, 1e6]);
    let c = mk(&[7e-3]);

    // (a + b) + c == a + (b + c)
    let mut left = a;
    left.merge(&b);
    left.merge(&c);
    let mut bc = b;
    bc.merge(&c);
    let mut right = a;
    right.merge(&bc);
    assert_eq!(left, right);

    // empty is the identity.
    let mut with_empty = a;
    with_empty.merge(&HistogramSnapshot::empty());
    assert_eq!(with_empty, a);
    assert_eq!(left.count(), 7);
}

#[test]
fn empty_snapshot_encodes_a_valid_series() {
    let mut out = String::new();
    HistogramSnapshot::empty().render_into(&mut out, "t_seconds", &[]);
    // Sparse encoding: the first and +Inf buckets always appear so
    // the cumulative series parses, and sum/count close the family.
    let first = format!("t_seconds_bucket{{le=\"{}\"}} 0\n", bucket_bound(0));
    assert!(out.contains(&first), "{out}");
    assert!(out.contains("t_seconds_bucket{le=\"+Inf\"} 0\n"), "{out}");
    assert!(out.contains("t_seconds_sum 0\n"), "{out}");
    assert!(out.contains("t_seconds_count 0\n"), "{out}");
}

#[test]
fn rendered_buckets_are_cumulative() {
    let h = Histogram::new();
    for &v in &[1e-6, 1e-6, 1e-3, 5.0] {
        h.record(v);
    }
    let mut out = String::new();
    h.snapshot().render_into(&mut out, "t_seconds", &[]);
    let mut last = 0u64;
    let mut infinity_total = None;
    for line in out.lines().filter(|l| l.starts_with("t_seconds_bucket")) {
        let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value >= last, "non-monotone cumulative series: {out}");
        last = value;
        if line.contains("le=\"+Inf\"") {
            infinity_total = Some(value);
        }
    }
    assert_eq!(infinity_total, Some(4), "{out}");
    assert!(out.contains("t_seconds_count 4\n"), "{out}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Any bit pattern — normals, subnormals, zeros, infinities,
    /// NaNs — lands in the bucket the `le` boundaries dictate.
    #[test]
    fn full_f64_range_lands_in_the_correct_bucket(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assert_eq!(bucket_index(v), reference_bucket(v));
    }

    /// Recording through a histogram agrees with `bucket_index`.
    #[test]
    fn recording_places_values_where_bucket_index_says(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let h = Histogram::new();
        h.record(v);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), 1);
        prop_assert_eq!(snap.counts[bucket_index(v)], 1);
    }
}
