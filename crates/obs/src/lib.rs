//! `nanoleak-obs` — the observability layer of the nanoleak stack.
//!
//! Three cooperating pieces, all dependency-free (std only) so every
//! crate in the workspace — including the HTTP server — can link it
//! without cycles:
//!
//! * [`metrics`] — a registry of lock-free atomic counters, gauges and
//!   log-bucketed latency histograms with Prometheus-style text
//!   exposition ([`metrics::Registry::render`]). Histograms use a
//!   fixed power-of-two bucket layout ([`metrics::BUCKETS`] buckets),
//!   so merging snapshots is associative and taking a snapshot is
//!   allocation-free.
//! * [`span`] — scoped spans ([`span!`]) recorded into a bounded
//!   per-thread ring buffer while a capture is active
//!   ([`span::begin_capture`] / [`span::end_capture`]). The drained
//!   [`span::Trace`] carries the span records (parent-linked, so a
//!   tree can be rebuilt), per-name duration totals for cheap timing
//!   breakdowns, and the request id active at capture start.
//! * [`log`] — leveled JSON-lines records to stderr, off by default
//!   and enabled via `NANOLEAK_LOG` or [`log::set_level`]
//!   (`--log-level` on the CLI). Every record is stamped with the
//!   thread's current request id ([`log::set_request_id`]).
//!
//! Conventions: metric names are `nanoleak_<subsystem>_<what>[_total]`
//! with unit suffixes (`_seconds`) on histograms; spans are named
//! after pipeline stages (`characterize`, `compile`, `estimate`,
//! `merge`, `serialize`) so per-stage totals aggregate across jobs.
//!
//! Instrumentation must not perturb results: counters and histograms
//! are single atomic RMW operations (safe anywhere, including parallel
//! sections), while spans allocate and therefore sit at shard
//! granularity and above — never on the per-pattern estimator path,
//! which stays zero-allocation.

pub mod log;
pub mod metrics;
pub mod span;

pub use log::{set_level, set_request_id, Level};
pub use metrics::{
    bucket_bound, bucket_index, global, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    BUCKETS,
};
pub use span::{begin_capture, capturing, end_capture, Span, SpanRecord, Trace};

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
