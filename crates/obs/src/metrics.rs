//! Lock-free metrics: counters, gauges, log-bucketed histograms, and
//! a registry with Prometheus text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over atomics; recording is a single atomic RMW, so handles
//! can be hit from any thread — including inside parallel sections —
//! without perturbing deterministic results. The registry mutex is
//! touched only at registration and render time, never on the record
//! path.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets (fixed layout, see [`bucket_bound`]).
pub const BUCKETS: usize = 64;

/// Exponent of the first bucket's upper bound: bucket 0 holds
/// `v <= 2^MIN_EXP` (~1 ns when values are seconds).
const MIN_EXP: i32 = -30;

/// Upper bound of bucket `i`: `2^(MIN_EXP + i)`, except the last
/// bucket which is `+Inf`.
pub fn bucket_bound(i: usize) -> f64 {
    assert!(i < BUCKETS);
    if i == BUCKETS - 1 {
        f64::INFINITY
    } else {
        (2.0f64).powi(MIN_EXP + i as i32)
    }
}

/// Bucket index for a recorded value; total over all of `f64`.
///
/// Finite positive values land in the first bucket whose upper bound
/// is `>= v` (computed exactly from the exponent bits, so exact
/// powers of two sit in the bucket they bound). `NaN`, zero and
/// negative values fall in bucket 0; `+Inf` and anything above the
/// last finite bound fall in the overflow bucket.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    if biased == 0 {
        return 0; // subnormal: far below the first bound
    }
    if biased == 0x7ff {
        return BUCKETS - 1; // +Inf
    }
    let exp = biased - 1023;
    let mantissa = bits & ((1u64 << 52) - 1);
    let raw = exp - MIN_EXP + i32::from(mantissa != 0);
    raw.clamp(0, BUCKETS as i32 - 1) as usize
}

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (set/add/sub).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    counts: [AtomicU64; BUCKETS],
    /// Sum of recorded values as `f64` bits, updated by CAS.
    sum_bits: AtomicU64,
}

/// A log-bucketed histogram with the fixed [`BUCKETS`]-bucket layout.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A free-standing histogram (not registered anywhere).
    pub fn new() -> Self {
        Histogram(Arc::new(HistogramCore {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }))
    }

    /// Records one observation (lock-free; two atomic RMWs).
    ///
    /// Non-finite and non-positive values still count in their bucket
    /// (see [`bucket_index`]) but contribute `0.0` to the sum so one
    /// stray `NaN`/`Inf` cannot poison the aggregate.
    pub fn record(&self, v: f64) {
        self.0.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let add = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        if add != 0.0 {
            let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + add).to_bits();
                match self.0.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Records a duration in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Allocation-free snapshot (fixed-size array on the stack).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.0.counts[i].load(Ordering::Relaxed)),
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a histogram; merging is associative and
/// commutative because every histogram shares one bucket layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub counts: [u64; BUCKETS],
    /// Sum of recorded (finite, positive) values.
    pub sum: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// The all-zero snapshot (identity element for [`merge`]).
    ///
    /// [`merge`]: HistogramSnapshot::merge
    pub const fn empty() -> Self {
        HistogramSnapshot { counts: [0; BUCKETS], sum: 0.0 }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds `other` into `self` bucket-by-bucket.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Renders the Prometheus `_bucket`/`_sum`/`_count` sample lines
    /// (cumulative `le` buckets; no `# TYPE` header).
    pub fn render_into(&self, out: &mut String, name: &str, labels: &[(&str, &str)]) {
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            // Trailing-zero buckets would bloat the exposition 64x;
            // always keep the first and +Inf buckets so an empty
            // histogram still encodes as a valid cumulative series.
            if *c == 0 && i != 0 && i != BUCKETS - 1 {
                continue;
            }
            let le =
                if i == BUCKETS - 1 { "+Inf".to_string() } else { bucket_bound(i).to_string() };
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            sample_u64(out, &format!("{name}_bucket"), &with_le, cum);
        }
        sample_f64(out, &format!("{name}_sum"), labels, self.sum);
        sample_u64(out, &format!("{name}_count"), labels, self.count());
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Metric {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    instrument: Instrument,
}

/// A set of registered metrics renderable as Prometheus text.
///
/// Registration returns a cheap handle; recording through the handle
/// never touches the registry lock. One process may hold several
/// registries (the server keeps one per instance for its own state
/// and the [`global`] one for engine/solver/cells instrumentation).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        instrument: Instrument,
    ) {
        let labels = labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
        self.metrics.lock().unwrap().push(Metric { name, help, labels, instrument });
    }

    /// Registers and returns a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers a counter carrying fixed labels.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Counter {
        let c = Counter::new();
        self.register(name, help, labels, Instrument::Counter(c.clone()));
        c
    }

    /// Registers and returns a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers a gauge carrying fixed labels.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Gauge {
        let g = Gauge::new();
        self.register(name, help, labels, Instrument::Gauge(g.clone()));
        g
    }

    /// Registers and returns a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers a histogram carrying fixed labels.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Histogram {
        let h = Histogram::new();
        self.register(name, help, labels, Instrument::Histogram(h.clone()));
        h
    }

    /// Renders every registered metric as Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders into `out`, grouping same-name metrics under one
    /// `# HELP`/`# TYPE` header (sorted by name, stable within).
    pub fn render_into(&self, out: &mut String) {
        let metrics = self.metrics.lock().unwrap();
        let mut order: Vec<usize> = (0..metrics.len()).collect();
        order.sort_by_key(|&i| metrics[i].name);
        let mut last_name = "";
        for &i in &order {
            let m = &metrics[i];
            if m.name != last_name {
                family_header(out, m.name, m.instrument.type_name(), m.help);
                last_name = m.name;
            }
            let labels: Vec<(&str, &str)> =
                m.labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            match &m.instrument {
                Instrument::Counter(c) => sample_u64(out, m.name, &labels, c.get()),
                Instrument::Gauge(g) => sample_i64(out, m.name, &labels, g.get()),
                Instrument::Histogram(h) => h.snapshot().render_into(out, m.name, &labels),
            }
        }
    }
}

/// The process-wide registry used by crates that have no access to a
/// server instance (engine, solver, cells).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Writes a `# HELP` + `# TYPE` family header.
pub fn family_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn labels_into(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

/// Writes one integer sample line (`name{labels} value`).
pub fn sample_u64(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    labels_into(out, labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Writes one signed integer sample line.
pub fn sample_i64(out: &mut String, name: &str, labels: &[(&str, &str)], value: i64) {
    out.push_str(name);
    labels_into(out, labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Writes one float sample line (shortest round-trip formatting).
pub fn sample_f64(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    labels_into(out, labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("t_total", "help");
        let g = r.gauge("t_gauge", "help");
        c.add(3);
        c.inc();
        g.set(7);
        g.dec();
        assert_eq!(c.get(), 4);
        assert_eq!(g.get(), 6);
        let text = r.render();
        assert!(text.contains("# TYPE t_total counter"), "{text}");
        assert!(text.contains("t_total 4\n"), "{text}");
        assert!(text.contains("t_gauge 6\n"), "{text}");
    }

    #[test]
    fn labels_render_escaped() {
        let r = Registry::new();
        let c = r.counter_with("t_total", "h", &[("kind", "a\"b\\c")]);
        c.inc();
        let text = r.render();
        assert!(text.contains(r#"t_total{kind="a\"b\\c"} 1"#), "{text}");
    }

    #[test]
    fn same_family_header_once() {
        let r = Registry::new();
        r.counter_with("t_total", "h", &[("kind", "a")]).inc();
        r.counter_with("t_total", "h", &[("kind", "b")]).add(2);
        let text = r.render();
        assert_eq!(text.matches("# TYPE t_total counter").count(), 1, "{text}");
        assert!(text.contains(r#"t_total{kind="a"} 1"#));
        assert!(text.contains(r#"t_total{kind="b"} 2"#));
    }

    #[test]
    fn histogram_sum_ignores_non_finite() {
        let h = Histogram::new();
        h.record(1.5);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-2.0);
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum, 1.5);
        assert_eq!(s.counts[0], 2); // NaN and -2.0
        assert_eq!(s.counts[BUCKETS - 1], 1); // +Inf
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        h.record(0.25);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        let s = h.snapshot();
        assert_eq!(s.count(), 4000);
        assert!((s.sum - 1000.0).abs() < 1e-9, "{}", s.sum);
    }
}
