//! Leveled JSON-lines logging to stderr.
//!
//! Off by default: records are emitted only when `NANOLEAK_LOG` names
//! a level (`error`..`trace`) or the process calls [`set_level`]
//! (the CLI's `--log-level`). Each record is one JSON object per
//! line:
//!
//! ```json
//! {"ts_ms":1723100000000,"level":"info","target":"server",
//!  "msg":"listening on 127.0.0.1:8425","request_id":"req-1a2b-0001"}
//! ```
//!
//! `request_id` is taken from a thread-local set by the HTTP layer
//! ([`set_request_id`]) — either propagated from an incoming
//! `X-Request-Id` header or generated ([`next_request_id`]) — so
//! every record (and every span capture) of one request carries the
//! same id across the stack.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json_escape_into;

/// Log verbosity, most severe first. `Off` disables all records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No records at all (the library default).
    Off = 0,
    /// Unexpected failures (worker panics, I/O errors).
    Error = 1,
    /// Degraded-but-continuing conditions.
    Warn = 2,
    /// Lifecycle events (listen, shutdown, job transitions).
    Info = 3,
    /// Per-request dispatch records.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Parses `"error" | "warn" | "info" | "debug" | "trace" | "off"`
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The lowercase name used in records.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Current level + 1; 0 means "not initialized yet" (read the env).
static LEVEL: AtomicU8 = AtomicU8::new(0);

fn level_from_env() -> Level {
    std::env::var("NANOLEAK_LOG").ok().and_then(|v| Level::parse(&v)).unwrap_or(Level::Off)
}

/// The active level (initialized from `NANOLEAK_LOG` on first use).
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != 0 {
        return decode(raw - 1);
    }
    let l = level_from_env();
    // Racing first reads agree: both computed the same env answer.
    LEVEL.store(l as u8 + 1, Ordering::Relaxed);
    l
}

/// Overrides the level (e.g. from `--log-level`).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8 + 1, Ordering::Relaxed);
}

fn decode(raw: u8) -> Level {
    match raw {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Off,
    }
}

/// Whether records at `l` are currently emitted.
pub fn enabled(l: Level) -> bool {
    l != Level::Off && l <= level()
}

thread_local! {
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Stamps subsequent records and span captures on this thread with
/// `id`; `None` clears it.
pub fn set_request_id(id: Option<String>) {
    REQUEST_ID.with(|r| *r.borrow_mut() = id);
}

/// The current thread's request id, if one is set.
pub fn current_request_id() -> Option<String> {
    REQUEST_ID.with(|r| r.borrow().clone())
}

/// Generates a fresh process-unique request id.
pub fn next_request_id() -> String {
    static PREFIX: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let prefix = PREFIX.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        // FNV-style scramble so concurrent processes rarely collide.
        (nanos ^ std::process::id() as u64).wrapping_mul(0x100000001b3) & 0xffff_ffff
    });
    format!("req-{prefix:08x}-{:04x}", SEQ.fetch_add(1, Ordering::Relaxed))
}

/// Emits one record (no level check — callers go through the macros,
/// which check [`enabled`] first so disabled records cost nothing).
pub fn emit(level: Level, target: &str, msg: &str) {
    let ts_ms =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
    let mut line = String::with_capacity(96 + msg.len());
    line.push_str("{\"ts_ms\":");
    line.push_str(&ts_ms.to_string());
    line.push_str(",\"level\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"target\":");
    json_escape_into(&mut line, target);
    line.push_str(",\"msg\":");
    json_escape_into(&mut line, msg);
    if let Some(id) = current_request_id() {
        line.push_str(",\"request_id\":");
        json_escape_into(&mut line, &id);
    }
    line.push_str("}\n");
    // One write_all per record keeps lines atomic across threads.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Emits an `error`-level record: `error!("server", "boom: {e}")`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($fmt:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::emit($crate::log::Level::Error, $target, &format!($($fmt)*));
        }
    };
}

/// Emits a `warn`-level record.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($fmt:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit($crate::log::Level::Warn, $target, &format!($($fmt)*));
        }
    };
}

/// Emits an `info`-level record.
#[macro_export]
macro_rules! info {
    ($target:expr, $($fmt:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, $target, &format!($($fmt)*));
        }
    };
}

/// Emits a `debug`-level record.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($fmt:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, $target, &format!($($fmt)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_round_trips() {
        for l in [Level::Off, Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn enabled_respects_ordering() {
        set_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Off);
        assert!(!enabled(Level::Error));
    }

    #[test]
    fn request_ids_are_unique_and_thread_scoped() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        set_request_id(Some(a.clone()));
        assert_eq!(current_request_id().as_deref(), Some(a.as_str()));
        let from_other = std::thread::spawn(current_request_id).join().unwrap();
        assert_eq!(from_other, None);
        set_request_id(None);
        assert_eq!(current_request_id(), None);
    }
}
