//! Scoped spans captured into a bounded per-thread ring buffer.
//!
//! A capture is started on the thread that owns a unit of work (the
//! server's job worker, a bench bin's timed region) with
//! [`begin_capture`]; [`span!`] guards created on that thread while
//! the capture is active record parent-linked [`SpanRecord`]s on
//! drop. [`end_capture`] drains them into a [`Trace`].
//!
//! Costs are bounded by design: when no capture is active a span
//! guard is a single thread-local flag check (no allocation, no
//! clock read), and an active capture keeps at most [`RING_CAPACITY`]
//! finished records — older records are dropped (counted in
//! [`Trace::dropped`]) while per-name duration totals keep counting,
//! so timing breakdowns stay exact even when the tree is truncated.
//! Spans recorded on *other* threads (e.g. inside a parallel section)
//! are ignored; instrumentation therefore sits at shard granularity
//! and above, on the thread driving the work.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Instant;

use crate::log::current_request_id;

/// Maximum finished spans retained per capture.
pub const RING_CAPACITY: usize = 512;

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Capture-unique id (creation order).
    pub id: u32,
    /// Id of the enclosing span, if any.
    pub parent: Option<u32>,
    /// Stage name (e.g. `"estimate"`).
    pub name: &'static str,
    /// Key/value attributes from the `span!` invocation.
    pub attrs: Vec<(&'static str, String)>,
    /// Start offset from the capture epoch, in microseconds.
    pub start_us: u64,
    /// Duration, in microseconds.
    pub dur_us: u64,
}

/// Per-name aggregate over *all* spans of a capture (including any
/// evicted from the ring).
#[derive(Clone, Copy, Debug)]
pub struct NameTotal {
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration, in microseconds.
    pub total_us: u64,
}

/// The result of a capture.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Request id that was current when the capture began.
    pub request_id: String,
    /// Finished spans in completion order (children before parents).
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring (still counted in `totals`).
    pub dropped: u64,
    /// Per-name duration totals, in first-seen order.
    pub totals: Vec<(&'static str, NameTotal)>,
}

impl Trace {
    /// Total duration of spans named `name`, in microseconds.
    pub fn total_us(&self, name: &str) -> u64 {
        self.totals.iter().find(|(n, _)| *n == name).map_or(0, |(_, t)| t.total_us)
    }
}

struct Capture {
    active: bool,
    epoch: Instant,
    next_id: u32,
    stack: Vec<u32>,
    ring: VecDeque<SpanRecord>,
    dropped: u64,
    totals: Vec<(&'static str, NameTotal)>,
    request_id: String,
}

impl Capture {
    fn idle() -> Self {
        Capture {
            active: false,
            epoch: Instant::now(),
            next_id: 0,
            stack: Vec::new(),
            ring: VecDeque::new(),
            dropped: 0,
            totals: Vec::new(),
            request_id: String::new(),
        }
    }
}

thread_local! {
    static CAPTURE: RefCell<Capture> = RefCell::new(Capture::idle());
}

/// Starts (or restarts) a capture on the current thread, discarding
/// any previous capture state.
pub fn begin_capture() {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        *c = Capture::idle();
        c.active = true;
        c.request_id = current_request_id().unwrap_or_default();
    });
}

/// Ends the current thread's capture and returns what it recorded.
///
/// Returns an empty [`Trace`] if no capture was active. Spans still
/// open when the capture ends are not recorded — end the capture
/// after the outermost guard has dropped.
pub fn end_capture() -> Trace {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        if !c.active {
            return Trace::default();
        }
        let done = std::mem::replace(&mut *c, Capture::idle());
        Trace {
            request_id: done.request_id,
            spans: done.ring.into_iter().collect(),
            dropped: done.dropped,
            totals: done.totals,
        }
    })
}

/// Whether a capture is active on the current thread (used by the
/// [`span!`] macro to skip attribute formatting when idle).
pub fn capturing() -> bool {
    CAPTURE.with(|c| c.borrow().active)
}

/// A scoped span guard; records itself on drop.
pub struct Span(Option<Open>);

struct Open {
    id: u32,
    parent: Option<u32>,
    name: &'static str,
    attrs: Vec<(&'static str, String)>,
    start: Instant,
}

impl Span {
    /// A guard that records nothing (no active capture).
    pub fn inactive() -> Self {
        Span(None)
    }
}

/// Opens a span named `name` (no attributes).
pub fn span(name: &'static str) -> Span {
    span_with(name, Vec::new())
}

/// Opens a span with pre-formatted attributes; prefer the [`span!`]
/// macro, which skips formatting entirely when no capture is active.
pub fn span_with(name: &'static str, attrs: Vec<(&'static str, String)>) -> Span {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        if !c.active {
            return Span(None);
        }
        let id = c.next_id;
        c.next_id += 1;
        let parent = c.stack.last().copied();
        c.stack.push(id);
        Span(Some(Open { id, parent, name, attrs, start: Instant::now() }))
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else { return };
        let dur_us = open.start.elapsed().as_micros() as u64;
        CAPTURE.with(|c| {
            let mut c = c.borrow_mut();
            if !c.active {
                return; // capture ended while the span was open
            }
            if c.stack.last() == Some(&open.id) {
                c.stack.pop();
            }
            let start_us =
                open.start.checked_duration_since(c.epoch).unwrap_or_default().as_micros() as u64;
            match c.totals.iter_mut().find(|(n, _)| *n == open.name) {
                Some((_, t)) => {
                    t.count += 1;
                    t.total_us += dur_us;
                }
                None => {
                    c.totals.push((open.name, NameTotal { count: 1, total_us: dur_us }));
                }
            }
            if c.ring.len() == RING_CAPACITY {
                c.ring.pop_front();
                c.dropped += 1;
            }
            c.ring.push_back(SpanRecord {
                id: open.id,
                parent: open.parent,
                name: open.name,
                attrs: open.attrs,
                start_us,
                dur_us,
            });
        });
    }
}

/// Opens a scoped span: `let _s = span!("estimate", shard = i);`.
///
/// Attribute values are formatted with `Display` — but only when a
/// capture is active on this thread; otherwise the macro costs one
/// thread-local flag check.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::span($name)
    };
    ($name:literal, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::span::capturing() {
            $crate::span::span_with(
                $name,
                vec![$((stringify!($key), format!("{}", $value))),+],
            )
        } else {
            $crate::span::Span::inactive()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_capture_records_nothing() {
        {
            let _s = crate::span!("outer", k = 1);
        }
        let t = end_capture();
        assert!(t.spans.is_empty());
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn nested_spans_link_parents() {
        begin_capture();
        {
            let _outer = crate::span!("job");
            {
                let _inner = crate::span!("estimate", shard = 3);
            }
            {
                let _inner = crate::span!("estimate", shard = 4);
            }
        }
        let t = end_capture();
        assert_eq!(t.spans.len(), 3);
        let job = t.spans.iter().find(|s| s.name == "job").unwrap();
        assert_eq!(job.parent, None);
        for s in t.spans.iter().filter(|s| s.name == "estimate") {
            assert_eq!(s.parent, Some(job.id));
        }
        let est = t.totals.iter().find(|(n, _)| *n == "estimate").unwrap().1;
        assert_eq!(est.count, 2);
        assert!(t.total_us("job") >= t.total_us("estimate"));
    }

    #[test]
    fn ring_is_bounded_but_totals_are_not() {
        begin_capture();
        for _ in 0..RING_CAPACITY + 10 {
            let _s = crate::span!("tick");
        }
        let t = end_capture();
        assert_eq!(t.spans.len(), RING_CAPACITY);
        assert_eq!(t.dropped, 10);
        let tick = t.totals.iter().find(|(n, _)| *n == "tick").unwrap().1;
        assert_eq!(tick.count, (RING_CAPACITY + 10) as u64);
    }

    #[test]
    fn restarting_a_capture_discards_the_previous_one() {
        begin_capture();
        {
            let _s = crate::span!("stale");
        }
        begin_capture();
        {
            let _s = crate::span!("fresh");
        }
        let t = end_capture();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].name, "fresh");
    }
}
