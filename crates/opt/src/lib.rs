//! # nanoleak-opt
//!
//! Leakage-aware netlist optimization for the *nanoleak* reproduction
//! of the DATE 2005 loading-effect paper.
//!
//! The paper's central observation is that a gate's leakage depends
//! not just on its input vector but on *which* characterized pin each
//! net loads (the loading effect). That turns two purely structural
//! rewrites into free standby-power knobs, because neither changes
//! any logic function:
//!
//! * **pin permutation** — reordering nets within a gate's
//!   commutative pin prefix
//!   ([`CellType::commutative_prefix`](nanoleak_cells::CellType::commutative_prefix));
//! * **De Morgan remapping** — `NAND2(!x, !y)` ⇄ `INV(NOR2(x, y))`,
//!   which retires the feeding inverters when nothing else uses them.
//!
//! [`optimize`] explores both greedily, scoring every candidate with
//! the compiled estimator at the circuit's minimum-leakage vector
//! (from [`mlv_search`]) and re-searching the vector after each
//! round. An optional score-gated [`canonicalize`] pre-pass
//! (double-inverter elimination, dead-gate sweep) is kept only when
//! the estimator agrees it lowers the objective.
//!
//! ## Contracts
//!
//! * **Function-preserving** — the optimized circuit computes the
//!   same primary-output and DFF next-state functions, positionally.
//! * **Improvement guarantee** — `improved.objective <=
//!   baseline.objective` always; if the heuristics end up worse (a
//!   weak re-search strategy can), the input circuit is returned
//!   unchanged with `reverted = true`.
//! * **Deterministic** — candidates are enumerated in fixed order
//!   (gates by id, permutations lexicographic, identity first) and
//!   scored sequentially; ties keep the earliest candidate, so equal
//!   inputs produce bit-equal outputs for any thread count.
//! * **Allocation-free scoring** — pin-permutation candidates are
//!   applied in place on the compiled plan
//!   ([`CompiledEstimator::permute_gate_inputs`](nanoleak_core::CompiledEstimator::permute_gate_inputs))
//!   and scored with a warm scratch; only the rare remap candidates
//!   rebuild and recompile.
//!
//! Run counters land in [`nanoleak_obs::global`] as `nanoleak_opt_*`.

pub mod optimizer;

pub use optimizer::{optimize, optimize_with, OptimizeConfig, OptimizeResult, RoundProgress};
