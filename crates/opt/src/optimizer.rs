//! The greedy leakage optimizer (see the crate docs for the model).

use std::time::{Duration, Instant};

use nanoleak_cells::{CellLibrary, CellType};
use nanoleak_core::{CompiledEstimator, EstimateError, EstimateScratch, EstimatorMode};
use nanoleak_engine::{mlv_search, EngineError, MlvConfig, MlvResult};
use nanoleak_netlist::canonical::{canonicalize, CanonReport};
use nanoleak_netlist::{Circuit, CircuitBuilder, Driver, GateId, NetId, Pattern};
use nanoleak_obs::{global, Counter, Histogram};

/// Widest pin count we track in fixed-size buffers (matches the
/// estimator's own pin bound).
const MAX_PINS: usize = 8;

struct OptMetrics {
    runs: Counter,
    rounds: Counter,
    candidates: Counter,
    accepted_permutations: Counter,
    accepted_remaps: Counter,
    reverted: Counter,
    run_seconds: Histogram,
    improvement_percent: Histogram,
}

fn opt_metrics() -> &'static OptMetrics {
    static METRICS: std::sync::OnceLock<OptMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| OptMetrics {
        runs: global().counter("nanoleak_opt_runs_total", "Optimization runs started"),
        rounds: global().counter("nanoleak_opt_rounds_total", "Optimization rounds executed"),
        candidates: global().counter(
            "nanoleak_opt_candidates_total",
            "Rewrite candidates scored with the estimator",
        ),
        accepted_permutations: global().counter(
            "nanoleak_opt_accepted_permutations_total",
            "Pin permutations kept because they lowered leakage at the MLV",
        ),
        accepted_remaps: global().counter(
            "nanoleak_opt_accepted_remaps_total",
            "NAND/NOR De Morgan remaps kept because they lowered leakage at the MLV",
        ),
        reverted: global().counter(
            "nanoleak_opt_reverted_total",
            "Runs that returned the input circuit because no rewrite survived the final guard",
        ),
        run_seconds: global()
            .histogram("nanoleak_opt_run_seconds", "Wall time of optimization runs"),
        improvement_percent: global().histogram(
            "nanoleak_opt_improvement_percent",
            "Relative MLV-leakage improvement of finished runs (percent)",
        ),
    })
}

/// Configuration of one [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeConfig {
    /// How the leakage vector is (re-)searched between rounds. The
    /// goal is respected: `Min` optimizes standby leakage at the
    /// minimum-leakage vector, `Max` pushes down the worst-case
    /// vector. "Improvement" always means a *lower* objective.
    pub mlv: MlvConfig,
    /// Upper bound on optimization rounds (each: pin-permutation pass,
    /// remap pass, vector re-search). The loop stops early when a
    /// round accepts nothing or fails to improve the objective.
    pub max_rounds: usize,
    /// Try the score-gated [`canonicalize`] pre-pass.
    pub canonicalize: bool,
    /// Enumerate commutative pin permutations.
    pub permute: bool,
    /// Enumerate `NAND2(!x,!y)` ⇄ `INV(NOR2(x,y))` remaps.
    pub remap: bool,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        Self {
            mlv: MlvConfig::default(),
            max_rounds: 4,
            canonicalize: true,
            permute: true,
            remap: true,
        }
    }
}

/// Progress of one finished optimization round (also the per-round
/// payload streamed to job observers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundProgress {
    /// 1-based round index.
    pub round: usize,
    /// Configured round bound.
    pub rounds_total: usize,
    /// Pin permutations accepted this round.
    pub accepted_permutations: usize,
    /// De Morgan remaps accepted this round.
    pub accepted_remaps: usize,
    /// Objective after this round's vector re-search \[A\].
    pub objective_a: f64,
    /// The untouched circuit's objective \[A\].
    pub baseline_a: f64,
    /// Estimator invocations so far (including embedded MLV searches).
    pub evaluations: u64,
}

/// Result of [`optimize`].
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// The rewritten circuit (the input circuit when `reverted`).
    pub circuit: Circuit,
    /// MLV search on the input circuit.
    pub baseline: MlvResult,
    /// MLV search on the returned circuit. Guaranteed
    /// `improved.objective <= baseline.objective`.
    pub improved: MlvResult,
    /// Per-round progress, in order.
    pub rounds: Vec<RoundProgress>,
    /// What the canonicalization pre-pass did, if it was kept.
    pub canonical: Option<CanonReport>,
    /// `true` when every rewrite was abandoned because the final
    /// objective would have exceeded the baseline (possible only with
    /// heuristic re-search strategies).
    pub reverted: bool,
    /// Total estimator invocations (candidates + MLV searches).
    pub evaluations: u64,
    /// Gate count going in.
    pub gates_before: usize,
    /// Gate count of the returned circuit.
    pub gates_after: usize,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl OptimizeResult {
    /// Relative improvement of the MLV objective, in percent.
    pub fn improvement_percent(&self) -> f64 {
        if self.baseline.objective.abs() <= 1e-30 {
            return 0.0;
        }
        (self.baseline.objective - self.improved.objective) / self.baseline.objective * 100.0
    }
}

/// Optimizes `circuit` for low leakage at its extreme vector. See the
/// crate docs for the passes and contracts.
///
/// # Errors
/// Propagates [`mlv_search`] and estimator errors.
pub fn optimize(
    circuit: &Circuit,
    library: &CellLibrary,
    config: &OptimizeConfig,
) -> Result<OptimizeResult, EngineError> {
    Ok(optimize_with(circuit, library, config, |_| true)?.expect("optimize cannot be cancelled"))
}

/// [`optimize`] with a per-round progress callback; returning `false`
/// cancels the run (`Ok(None)`). The callback fires after each
/// round's vector re-search, in round order.
///
/// # Errors
/// Propagates [`mlv_search`] and estimator errors.
pub fn optimize_with(
    circuit: &Circuit,
    library: &CellLibrary,
    config: &OptimizeConfig,
    mut on_round: impl FnMut(&RoundProgress) -> bool,
) -> Result<Option<OptimizeResult>, EngineError> {
    let metrics = opt_metrics();
    metrics.runs.inc();
    let start = Instant::now();
    let _span = nanoleak_obs::span!("optimize");

    let baseline = mlv_search(circuit, library, &config.mlv)?;
    let mut evaluations = baseline.telemetry.evaluations;
    let mut cur = circuit.clone();
    let mut cur_mlv = baseline.clone();

    // Score-gated canonicalization: keep the cleaned-up circuit only
    // if the estimator agrees it is no worse at its own MLV (the pass
    // removes real transistors, which usually — but not provably —
    // lowers leakage).
    let mut canonical = None;
    if config.canonicalize {
        let (canon, report) = canonicalize(&cur);
        let canon_mlv = mlv_search(&canon, library, &config.mlv)?;
        evaluations += canon_mlv.telemetry.evaluations;
        if canon_mlv.objective <= cur_mlv.objective {
            cur = canon;
            cur_mlv = canon_mlv;
            canonical = Some(report);
        }
    }

    let mut rounds: Vec<RoundProgress> = Vec::new();
    let mut total_perms = 0usize;
    let mut total_remaps = 0usize;
    for round in 1..=config.max_rounds {
        let round_start = cur_mlv.objective;
        // `cur_mlv.objective` IS the estimate of `cur` at
        // `cur_mlv.pattern`, so candidate comparisons against it are
        // bit-consistent with re-running the estimator.
        let mut incumbent = cur_mlv.objective;
        let mut accepted_permutations = 0;
        if config.permute {
            let mut plan = CompiledEstimator::compile(&cur, library)?;
            let mut scratch = plan.scratch();
            accepted_permutations = permutation_pass(
                &mut plan,
                &mut scratch,
                &cur_mlv.pattern,
                config.mlv.mode,
                &mut incumbent,
                &mut evaluations,
            )?;
            if accepted_permutations > 0 {
                // Rebuild so later passes (and the caller) see the
                // chosen pin assignment as a plain circuit. The
                // rebuild is estimator-neutral: gate order and pin
                // assignments are preserved, so `incumbent` still
                // matches a fresh compile bit-for-bit.
                cur = rebuild_with_pins(&cur, &plan);
            }
        }

        let mut accepted_remaps = 0;
        if config.remap {
            // Greedy first-improvement: candidate gate ids go stale
            // after every acceptance (the rebuild renumbers), so
            // re-enumerate from the rewritten circuit each time.
            loop {
                let mut improved = false;
                for gid in remap_candidates(&cur) {
                    let candidate = apply_remap(&cur, gid);
                    let obj = score(&candidate, library, &cur_mlv.pattern, config.mlv.mode)?;
                    evaluations += 1;
                    metrics.candidates.inc();
                    if obj < incumbent {
                        cur = candidate;
                        incumbent = obj;
                        accepted_remaps += 1;
                        improved = true;
                        break;
                    }
                }
                if !improved {
                    break;
                }
            }
        }

        // Re-search the extreme vector of the rewritten circuit.
        let next = mlv_search(&cur, library, &config.mlv)?;
        evaluations += next.telemetry.evaluations;
        cur_mlv = next;

        total_perms += accepted_permutations;
        total_remaps += accepted_remaps;
        metrics.rounds.inc();
        let progress = RoundProgress {
            round,
            rounds_total: config.max_rounds,
            accepted_permutations,
            accepted_remaps,
            objective_a: cur_mlv.objective,
            baseline_a: baseline.objective,
            evaluations,
        };
        rounds.push(progress);
        if !on_round(&progress) {
            return Ok(None);
        }
        if (accepted_permutations == 0 && accepted_remaps == 0) || cur_mlv.objective >= round_start
        {
            break;
        }
    }

    // Hard guarantee: never hand back a circuit whose re-searched
    // objective exceeds the baseline. Heuristic strategies (random /
    // hill-climb re-search) can land on a worse vector estimate even
    // though every accepted rewrite improved the fixed-pattern score.
    let mut reverted = false;
    if cur_mlv.objective > baseline.objective {
        cur = circuit.clone();
        cur_mlv = baseline.clone();
        reverted = true;
        metrics.reverted.inc();
    }
    metrics.accepted_permutations.add(total_perms as u64);
    metrics.accepted_remaps.add(total_remaps as u64);
    metrics.run_seconds.record_duration(start.elapsed());

    let result = OptimizeResult {
        gates_before: circuit.gate_count(),
        gates_after: cur.gate_count(),
        circuit: cur,
        improved: cur_mlv,
        baseline,
        rounds,
        canonical,
        reverted,
        evaluations,
        elapsed: start.elapsed(),
    };
    metrics.improvement_percent.record(result.improvement_percent());
    Ok(Some(result))
}

/// One allocation-free estimate of `circuit` at `pattern`.
fn score(
    circuit: &Circuit,
    library: &CellLibrary,
    pattern: &Pattern,
    mode: EstimatorMode,
) -> Result<f64, EstimateError> {
    let plan = CompiledEstimator::compile(circuit, library)?;
    let mut scratch = plan.scratch();
    Ok(plan.estimate_into(&mut scratch, pattern, mode)?.total())
}

/// Lexicographic next-permutation; `false` once `p` is the last
/// (descending) arrangement.
fn next_permutation(p: &mut [usize]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

/// Moves `gate`'s pins from arrangement `cur` to `target` (both map
/// position → original pin) with one in-place plan permutation.
fn apply_arrangement(
    plan: &mut CompiledEstimator<'_>,
    gate: GateId,
    pins: usize,
    prefix: usize,
    cur: &mut [usize; MAX_PINS],
    target: &[usize; MAX_PINS],
) {
    if cur[..prefix] == target[..prefix] {
        return;
    }
    // permute_gate_inputs maps new position -> current position, so
    // the relative permutation is cur⁻¹ ∘ target.
    let mut inv = [0usize; MAX_PINS];
    for (k, &c) in cur[..prefix].iter().enumerate() {
        inv[c] = k;
    }
    let mut rel = [0usize; MAX_PINS];
    for k in 0..prefix {
        rel[k] = inv[target[k]];
    }
    for (k, r) in rel[prefix..pins].iter_mut().enumerate() {
        *r = prefix + k;
    }
    plan.permute_gate_inputs(gate, &rel[..pins]);
    cur[..prefix].copy_from_slice(&target[..prefix]);
}

/// Greedy per-gate pin-permutation pass at a fixed pattern. Gates are
/// visited in id order; each gate's commutative-prefix permutations
/// are enumerated lexicographically (identity first, so ties keep the
/// incumbent assignment) and scored in place — no allocation, no
/// recompile. On return the plan holds the chosen assignments and
/// `incumbent` their objective.
fn permutation_pass(
    plan: &mut CompiledEstimator<'_>,
    scratch: &mut EstimateScratch,
    pattern: &Pattern,
    mode: EstimatorMode,
    incumbent: &mut f64,
    evaluations: &mut u64,
) -> Result<usize, EstimateError> {
    let metrics = opt_metrics();
    let mut accepted = 0;
    let n_gates = plan.circuit().gate_count();
    let identity = {
        let mut id = [0usize; MAX_PINS];
        for (k, v) in id.iter_mut().enumerate() {
            *v = k;
        }
        id
    };
    for gi in 0..n_gates {
        let gate = GateId(gi);
        let cell = plan.circuit().gate(gate).cell;
        let prefix = cell.commutative_prefix();
        if prefix < 2 {
            continue;
        }
        let pins = cell.num_inputs();
        {
            // All-equal nets: every arrangement is the same assignment.
            let nets = plan.gate_input_nets(gate);
            if nets[..prefix].iter().all(|&n| n == nets[0]) {
                continue;
            }
        }
        let mut cur = identity;
        let mut best = identity;
        let mut best_obj = *incumbent;
        let mut cand = identity;
        while next_permutation(&mut cand[..prefix]) {
            apply_arrangement(plan, gate, pins, prefix, &mut cur, &cand);
            let obj = plan.estimate_into(scratch, pattern, mode)?.total();
            *evaluations += 1;
            metrics.candidates.inc();
            if obj < best_obj {
                best_obj = obj;
                best[..prefix].copy_from_slice(&cand[..prefix]);
            }
        }
        apply_arrangement(plan, gate, pins, prefix, &mut cur, &best);
        if best[..prefix] != identity[..prefix] {
            accepted += 1;
            *incumbent = best_obj;
        }
    }
    Ok(accepted)
}

/// Rebuilds `c` with each gate's input list taken from the (possibly
/// permuted) plan. Gate order and names are preserved, so the result
/// estimates bit-identically to the plan itself.
fn rebuild_with_pins(c: &Circuit, plan: &CompiledEstimator<'_>) -> Circuit {
    let mut b = CircuitBuilder::new(c.name());
    let mut new_net = vec![NetId(usize::MAX); c.net_count()];
    for &i in c.inputs() {
        new_net[i.0] = b.add_input(c.net_name(i));
    }
    for &s in c.state_inputs() {
        new_net[s.0] = b.add_state_input(c.net_name(s));
    }
    for (gi, g) in c.gates().iter().enumerate() {
        let ins: Vec<NetId> =
            plan.gate_input_nets(GateId(gi)).iter().map(|&n| new_net[n as usize]).collect();
        new_net[g.output.0] = b.add_gate(g.cell, &ins, c.net_name(g.output));
    }
    for &o in c.outputs() {
        b.mark_output(new_net[o.0]);
    }
    for &d in c.dff_d_nets() {
        b.mark_dff_d(new_net[d.0]);
    }
    b.build().expect("pin-permuted rebuild of a valid circuit is valid")
}

/// Gates eligible for the De Morgan remap: 2-input NAND/NOR whose
/// pins are both driven by inverters, in gate-id order.
fn remap_candidates(c: &Circuit) -> Vec<GateId> {
    let mut out = Vec::new();
    for (gi, g) in c.gates().iter().enumerate() {
        if !matches!(g.cell, CellType::Nand2 | CellType::Nor2) {
            continue;
        }
        let all_inverted = g.inputs.iter().all(|&i| match c.net_driver(i) {
            Driver::Gate(h) => c.gate(h).cell == CellType::Inv,
            _ => false,
        });
        if all_inverted {
            out.push(GateId(gi));
        }
    }
    out
}

/// Rewrites `NAND2(!x, !y)` as `INV(NOR2(x, y))` (or the NOR/NAND
/// dual) at `target`, retiring each feeding inverter whose only load
/// was the remapped gate. DFF slave inverters are never retired, and
/// inverter outputs that are primary outputs or DFF D nets keep their
/// driver. Function-preserving by De Morgan; whether it *pays* is for
/// the estimator to decide.
fn apply_remap(c: &Circuit, target: GateId) -> Circuit {
    let g = c.gate(target);
    debug_assert!(matches!(g.cell, CellType::Nand2 | CellType::Nor2));
    let dual = if g.cell == CellType::Nand2 { CellType::Nor2 } else { CellType::Nand2 };

    let mut is_state = vec![false; c.net_count()];
    for &s in c.state_inputs() {
        is_state[s.0] = true;
    }
    let mut keep_driven = vec![false; c.net_count()];
    for &o in c.outputs() {
        keep_driven[o.0] = true;
    }
    for &d in c.dff_d_nets() {
        keep_driven[d.0] = true;
    }

    // The two feeding inverters: their sources become the dual gate's
    // pins; single-load ones retire.
    let mut sources = [NetId(usize::MAX); 2];
    let mut retire = [usize::MAX; 2];
    for (k, &pin) in g.inputs.iter().enumerate() {
        let Driver::Gate(h) = c.net_driver(pin) else {
            unreachable!("remap candidates are inverter-driven");
        };
        sources[k] = c.gate(h).inputs[0];
        let retirable =
            c.net_loads(pin).len() == 1 && !keep_driven[pin.0] && !is_state[c.gate(h).inputs[0].0];
        if retirable {
            retire[k] = h.0;
        }
    }

    let mut b = CircuitBuilder::new(c.name());
    let mut new_net = vec![NetId(usize::MAX); c.net_count()];
    for &i in c.inputs() {
        new_net[i.0] = b.add_input(c.net_name(i));
    }
    for &s in c.state_inputs() {
        new_net[s.0] = b.add_state_input(c.net_name(s));
    }
    for (gi, g2) in c.gates().iter().enumerate() {
        if gi == retire[0] || gi == retire[1] {
            continue;
        }
        if gi == target.0 {
            let out_name = c.net_name(g2.output);
            let mid = b.add_gate(
                dual,
                &[new_net[sources[0].0], new_net[sources[1].0]],
                &format!("{out_name}__dm"),
            );
            new_net[g2.output.0] = b.add_gate(CellType::Inv, &[mid], out_name);
            continue;
        }
        let ins: Vec<NetId> = g2.inputs.iter().map(|&i| new_net[i.0]).collect();
        new_net[g2.output.0] = b.add_gate(g2.cell, &ins, c.net_name(g2.output));
    }
    for &o in c.outputs() {
        b.mark_output(new_net[o.0]);
    }
    for &d in c.dff_d_nets() {
        b.mark_dff_d(new_net[d.0]);
    }
    b.build().expect("De Morgan remap of a valid circuit is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoleak_cells::CharacterizeOptions;
    use nanoleak_core::estimate;
    use nanoleak_device::Technology;
    use nanoleak_engine::MlvStrategy;
    use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
    use nanoleak_netlist::logic::simulate;
    use nanoleak_netlist::normalize::normalize;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn library() -> Arc<CellLibrary> {
        CellLibrary::shared_with_options(
            &Technology::d25(),
            300.0,
            &CharacterizeOptions::coarse(&CellType::ALL),
        )
    }

    fn assert_same_function(a: &Circuit, b: &Circuit, cases: usize, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..cases {
            let p = Pattern::random(a, &mut rng);
            let va = simulate(a, &p.pi, &p.states);
            let vb = simulate(b, &p.pi, &p.states);
            for (k, (&oa, &ob)) in a.outputs().iter().zip(b.outputs()).enumerate() {
                assert_eq!(va[oa.0], vb[ob.0], "output {k}");
            }
            for (k, (&da, &db)) in a.dff_d_nets().iter().zip(b.dff_d_nets()).enumerate() {
                assert_eq!(va[da.0], vb[db.0], "dff d {k}");
            }
        }
    }

    fn small_config() -> OptimizeConfig {
        OptimizeConfig { max_rounds: 3, ..OptimizeConfig::default() }
    }

    #[test]
    fn optimize_improves_or_matches_and_reports_exactly() {
        let raw = random_circuit(&RandomCircuitSpec::new("opt-t", 5, 3, 40, 1, 13));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let result = optimize(&circuit, &lib, &small_config()).unwrap();
        assert!(result.improved.objective <= result.baseline.objective);
        assert_same_function(&circuit, &result.circuit, 16, 99);
        // The reported improved objective is exactly what estimate()
        // returns for the rewritten circuit at the reported vector.
        let re =
            estimate(&result.circuit, &lib, &result.improved.pattern, EstimatorMode::Lut).unwrap();
        assert_eq!(
            re.total.total().to_bits(),
            result.improved.objective.to_bits(),
            "reported improvement must be reproducible bit-exactly"
        );
    }

    #[test]
    fn optimize_is_deterministic() {
        let raw = random_circuit(&RandomCircuitSpec::new("opt-d", 5, 3, 35, 0, 21));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let a = optimize(&circuit, &lib, &small_config()).unwrap();
        let b = optimize(&circuit, &lib, &small_config()).unwrap();
        assert_eq!(a.circuit.structural_key(), b.circuit.structural_key());
        assert_eq!(a.improved.objective.to_bits(), b.improved.objective.to_bits());
        assert_eq!(a.rounds.len(), b.rounds.len());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn cancellation_returns_none() {
        let raw = random_circuit(&RandomCircuitSpec::new("opt-c", 4, 2, 25, 0, 2));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let cancelled = optimize_with(&circuit, &lib, &small_config(), |_| false).unwrap();
        assert!(cancelled.is_none());
    }

    #[test]
    fn heuristic_strategies_never_beat_the_guarantee() {
        let raw = random_circuit(&RandomCircuitSpec::new("opt-h", 6, 3, 45, 2, 31));
        let circuit = normalize(&raw).unwrap();
        let lib = library();
        let config = OptimizeConfig {
            mlv: MlvConfig {
                strategy: MlvStrategy::HillClimb { restarts: 2, max_steps: 8 },
                ..MlvConfig::default()
            },
            max_rounds: 2,
            ..OptimizeConfig::default()
        };
        let result = optimize(&circuit, &lib, &config).unwrap();
        assert!(result.improved.objective <= result.baseline.objective);
        if result.reverted {
            assert_eq!(result.gates_after, result.gates_before);
        }
        assert_same_function(&circuit, &result.circuit, 12, 7);
    }

    #[test]
    fn remap_rewrite_preserves_function_and_retires_inverters() {
        // y = NAND(!a, !b) with single-use inverters: the remap must
        // drop to NOR2 + INV (2 gates instead of 3).
        let mut b = CircuitBuilder::new("dm");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let na = b.add_gate(CellType::Inv, &[a], "na");
        let nb = b.add_gate(CellType::Inv, &[c], "nb");
        let y = b.add_gate(CellType::Nand2, &[na, nb], "y");
        b.mark_output(y);
        let circuit = b.build().unwrap();
        let cands = remap_candidates(&circuit);
        assert_eq!(cands, vec![GateId(2)]);
        let rewritten = apply_remap(&circuit, cands[0]);
        assert_eq!(rewritten.gate_count(), 2);
        assert_same_function(&circuit, &rewritten, 8, 3);
    }

    #[test]
    fn remap_keeps_shared_and_protected_inverters() {
        // na also feeds an output, so it must survive the remap.
        let mut b = CircuitBuilder::new("dm2");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let na = b.add_gate(CellType::Inv, &[a], "na");
        let nb = b.add_gate(CellType::Inv, &[c], "nb");
        let y = b.add_gate(CellType::Nor2, &[na, nb], "y");
        b.mark_output(y);
        b.mark_output(na);
        let circuit = b.build().unwrap();
        let rewritten = apply_remap(&circuit, GateId(2));
        // na survives (it is an output), nb retires.
        assert_eq!(rewritten.gate_count(), 3);
        assert!(rewritten.find_net("na").is_some());
        assert_same_function(&circuit, &rewritten, 8, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The satellite contract: optimization is semantics-
        /// preserving for random circuits, the improvement direction
        /// holds, and the reported leakage matches an independent
        /// estimate() re-run bit-exactly.
        #[test]
        fn optimization_preserves_semantics(
            seed in any::<u64>(),
            gates in 8usize..50,
            inputs in 2usize..8,
            dffs in 0usize..4,
        ) {
            let spec = RandomCircuitSpec::new("opt-prop", inputs, 2, gates, dffs, seed);
            let circuit = normalize(&random_circuit(&spec)).unwrap();
            let lib = library();
            let result = optimize(&circuit, &lib, &small_config()).unwrap();
            prop_assert!(result.improved.objective <= result.baseline.objective);
            assert_same_function(&circuit, &result.circuit, 8, seed ^ 0x5bd1);
            let re = estimate(
                &result.circuit,
                &lib,
                &result.improved.pattern,
                EstimatorMode::Lut,
            ).unwrap();
            prop_assert_eq!(
                re.total.total().to_bits(),
                result.improved.objective.to_bits()
            );
        }
    }
}
