//! `nanoleak-fault` — a small failpoint layer for chaos-testing the
//! nanoleak serving stack.
//!
//! Production code plants named **failpoints** at failure-relevant
//! seams (cache I/O, characterization, shard boundaries, job entry)
//! by calling [`inject`]. A disarmed failpoint costs one relaxed
//! atomic load — no lock, no allocation, no branch beyond the flag
//! check — so the hooks can stay compiled into release builds.
//!
//! Tests and operators **arm** failpoints with a [`FaultAction`]:
//!
//! * [`FaultAction::Error`] — [`inject`] returns `Some(message)`; the
//!   call site maps it into its own error type (an injected solver
//!   failure, a failed cache write, ...).
//! * [`FaultAction::Panic`] — [`inject`] panics with the message,
//!   exercising `catch_unwind` isolation around the call site.
//! * [`FaultAction::SleepMs`] — [`inject`] blocks for the given
//!   duration and returns `None`, simulating a slow shard or a stuck
//!   solver without changing any result.
//!
//! Arming is programmatic ([`arm`] / [`arm_limited`]) or textual: a
//! spec string (`"point=action[:arg][*N]"`, `;`-separated) via
//! [`arm_from_spec`], or the `NANOLEAK_FAULTS` environment variable
//! via [`arm_from_env`] — the hook a server binary calls once at
//! startup. `*N` bounds how many times the point fires before it
//! disarms itself (e.g. `"job-entry=panic*1"` panics exactly one
//! job).
//!
//! Every fire is counted per point ([`hits`], [`snapshot`]) so a
//! chaos run can assert — and a `/metrics` endpoint can expose as
//! `nanoleak_fault_injected_total` — exactly which faults actually
//! triggered.
//!
//! The registry is process-global (fault injection is a process
//! property, like signal handlers); tests sharing a process must
//! serialize chaos sections and [`disarm_all`] between them.
//!
//! Dependency-free (std only), like `nanoleak-obs`, so any crate in
//! the workspace can plant failpoints without cycles.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// [`inject`] returns `Some(message)`; the call site surfaces it
    /// as its own error type.
    Error(String),
    /// [`inject`] panics with the message (exercises `catch_unwind`
    /// isolation at the call site's boundary).
    Panic(String),
    /// [`inject`] sleeps for this many milliseconds, then returns
    /// `None` — a pure delay that never changes a result.
    SleepMs(u64),
}

/// One armed failpoint.
#[derive(Debug)]
struct Armed {
    action: FaultAction,
    /// Fires remaining before the point self-disarms; `None` = unlimited.
    remaining: Option<u64>,
}

/// Fast-path flag: `false` means no failpoint is armed anywhere and
/// [`inject`] returns immediately.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Per-point fire counts; persists across disarms so a chaos run can
/// assert on what triggered after cleaning up.
fn hit_counts() -> &'static Mutex<HashMap<String, u64>> {
    static HITS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    HITS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // A panic inside the critical sections below is impossible (no
    // user code runs under the lock), but `FaultAction::Panic` tests
    // unwind through arbitrary frames — never let poisoning turn one
    // injected panic into a poisoned-registry cascade.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms `point` with `action`, firing on every hit until disarmed.
pub fn arm(point: &str, action: FaultAction) {
    arm_limited(point, action, None);
}

/// Arms `point` with `action`, firing at most `limit` times
/// (`None` = unlimited) before the point disarms itself.
pub fn arm_limited(point: &str, action: FaultAction, limit: Option<u64>) {
    let mut reg = lock(registry());
    reg.insert(point.to_string(), Armed { action, remaining: limit });
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarms one failpoint (its hit count is retained).
pub fn disarm(point: &str) {
    let mut reg = lock(registry());
    reg.remove(point);
    if reg.is_empty() {
        ANY_ARMED.store(false, Ordering::Release);
    }
}

/// Disarms every failpoint (hit counts are retained).
pub fn disarm_all() {
    lock(registry()).clear();
    ANY_ARMED.store(false, Ordering::Release);
}

/// Times `point` has actually fired (counted across disarms).
pub fn hits(point: &str) -> u64 {
    lock(hit_counts()).get(point).copied().unwrap_or(0)
}

/// Every point that has ever fired, with its fire count, sorted by
/// point name (stable for text exposition).
pub fn snapshot() -> Vec<(String, u64)> {
    let mut all: Vec<(String, u64)> =
        lock(hit_counts()).iter().map(|(k, v)| (k.clone(), *v)).collect();
    all.sort();
    all
}

/// The failpoint check production code plants at a failure seam.
///
/// Disarmed (the overwhelmingly common case): one relaxed atomic
/// load, `None`. Armed: fires the action — returns `Some(message)`
/// for [`FaultAction::Error`], panics for [`FaultAction::Panic`],
/// sleeps then returns `None` for [`FaultAction::SleepMs`] — and
/// counts the hit.
pub fn inject(point: &str) -> Option<String> {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return None;
    }
    let action = {
        let mut reg = lock(registry());
        let armed = reg.get_mut(point)?;
        match &mut armed.remaining {
            Some(0) => {
                reg.remove(point);
                return None;
            }
            Some(n) => *n -= 1,
            None => {}
        }
        let action = armed.action.clone();
        if armed.remaining == Some(0) {
            reg.remove(point);
        }
        action
    };
    *lock(hit_counts()).entry(point.to_string()).or_insert(0) += 1;
    match action {
        FaultAction::Error(msg) => Some(msg),
        FaultAction::Panic(msg) => panic!("injected fault at '{point}': {msg}"),
        FaultAction::SleepMs(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
    }
}

/// Arms failpoints from a spec string:
/// `point=action[:arg][*N]` entries separated by `;`.
///
/// Actions: `error[:message]`, `panic[:message]`, `sleep:MILLIS`.
/// `*N` caps the fire count. Examples:
///
/// * `job-entry=panic*1` — panic the first job that starts;
/// * `cache-io=error:disk unplugged` — every cache write fails;
/// * `slow-shard=sleep:250` — every shard takes an extra 250 ms.
///
/// Returns how many points were armed.
///
/// # Errors
/// A human-readable message naming the malformed entry.
pub fn arm_from_spec(spec: &str) -> Result<usize, String> {
    let mut armed = 0;
    for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (point, rhs) = entry
            .split_once('=')
            .ok_or_else(|| format!("fault spec '{entry}': expected point=action"))?;
        let point = point.trim();
        if point.is_empty() {
            return Err(format!("fault spec '{entry}': empty point name"));
        }
        let (rhs, limit) = match rhs.rsplit_once('*') {
            Some((action, n)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                let n: u64 = n.parse().map_err(|_| format!("fault spec '{entry}': bad limit"))?;
                (action, Some(n))
            }
            _ => (rhs, None),
        };
        let (kind, arg) = match rhs.split_once(':') {
            Some((k, a)) => (k.trim(), Some(a)),
            None => (rhs.trim(), None),
        };
        let action = match (kind, arg) {
            ("error", msg) => FaultAction::Error(msg.unwrap_or("injected error").to_string()),
            ("panic", msg) => FaultAction::Panic(msg.unwrap_or("injected panic").to_string()),
            ("sleep", Some(ms)) => FaultAction::SleepMs(
                ms.trim()
                    .parse()
                    .map_err(|_| format!("fault spec '{entry}': sleep wants milliseconds"))?,
            ),
            ("sleep", None) => {
                return Err(format!("fault spec '{entry}': sleep wants milliseconds"))
            }
            (other, _) => {
                return Err(format!(
                    "fault spec '{entry}': unknown action '{other}' (error|panic|sleep)"
                ))
            }
        };
        arm_limited(point, action, limit);
        armed += 1;
    }
    Ok(armed)
}

/// Environment variable [`arm_from_env`] reads.
pub const ENV_VAR: &str = "NANOLEAK_FAULTS";

/// Arms failpoints from [`ENV_VAR`] (see [`arm_from_spec`] for the
/// syntax). Unset or empty is a no-op.
///
/// # Errors
/// The spec-parse failure message; nothing before the malformed entry
/// is rolled back.
pub fn arm_from_env() -> Result<usize, String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => arm_from_spec(&spec),
        _ => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global; tests serialize on this.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = lock(GATE.get_or_init(|| Mutex::new(())));
        disarm_all();
        guard
    }

    #[test]
    fn disarmed_points_are_silent() {
        let _g = serial();
        assert_eq!(inject("nothing-armed-here"), None);
    }

    #[test]
    fn error_action_returns_the_message() {
        let _g = serial();
        arm("t-error", FaultAction::Error("boom".into()));
        assert_eq!(inject("t-error"), Some("boom".into()));
        assert_eq!(inject("t-other"), None, "only the armed point fires");
        disarm("t-error");
        assert_eq!(inject("t-error"), None);
        assert!(hits("t-error") >= 1, "hits survive disarm");
    }

    #[test]
    fn limited_points_self_disarm() {
        let _g = serial();
        let before = hits("t-limited");
        arm_limited("t-limited", FaultAction::Error("once".into()), Some(2));
        assert!(inject("t-limited").is_some());
        assert!(inject("t-limited").is_some());
        assert_eq!(inject("t-limited"), None, "limit reached");
        assert_eq!(hits("t-limited"), before + 2);
        disarm_all();
    }

    #[test]
    fn panic_action_panics_with_the_point_name() {
        let _g = serial();
        arm_limited("t-panic", FaultAction::Panic("kaboom".into()), Some(1));
        let err = std::panic::catch_unwind(|| inject("t-panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t-panic") && msg.contains("kaboom"), "{msg}");
        assert_eq!(inject("t-panic"), None, "self-disarmed after the limit");
        disarm_all();
    }

    #[test]
    fn sleep_action_delays_and_passes() {
        let _g = serial();
        arm_limited("t-sleep", FaultAction::SleepMs(30), Some(1));
        let start = std::time::Instant::now();
        assert_eq!(inject("t-sleep"), None, "sleep never fails the call site");
        assert!(start.elapsed() >= Duration::from_millis(25));
        disarm_all();
    }

    #[test]
    fn spec_parsing_round_trips() {
        let _g = serial();
        let n = arm_from_spec("a=error:msg with spaces*3; b=panic; c=sleep:150").unwrap();
        assert_eq!(n, 3);
        assert_eq!(inject("a"), Some("msg with spaces".into()));
        {
            let reg = lock(registry());
            assert_eq!(reg.get("a").unwrap().remaining, Some(2));
            assert_eq!(reg.get("b").unwrap().action, FaultAction::Panic("injected panic".into()));
            assert_eq!(reg.get("c").unwrap().action, FaultAction::SleepMs(150));
        }
        disarm_all();
        for bad in ["justapoint", "=error", "x=explode", "x=sleep", "x=sleep:soon"] {
            assert!(arm_from_spec(bad).is_err(), "{bad}");
        }
        disarm_all();
    }

    #[test]
    fn snapshot_lists_fired_points_sorted() {
        let _g = serial();
        arm("t-snap-b", FaultAction::Error("x".into()));
        arm("t-snap-a", FaultAction::Error("y".into()));
        inject("t-snap-b");
        inject("t-snap-a");
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        let ia = names.iter().position(|n| *n == "t-snap-a").unwrap();
        let ib = names.iter().position(|n| *n == "t-snap-b").unwrap();
        assert!(ia < ib, "sorted by point name: {names:?}");
        disarm_all();
    }
}
