//! # nanoleak-device
//!
//! Compact leakage models for nano-scale bulk-CMOS transistors — the
//! device layer of the *nanoleak* reproduction of Mukhopadhyay, Bhunia
//! & Roy, *"Modeling and Analysis of Loading Effect in Leakage of
//! Nano-Scaled Bulk-CMOS Logic Circuits"*, DATE 2005.
//!
//! The crate models the paper's three leakage mechanisms as smooth,
//! KCL-ready voltage-controlled current sources (the paper's Fig. 3):
//!
//! * [`subthreshold`] — weak-inversion conduction with DIBL, body
//!   effect, temperature activation, and a realistic ON-state
//!   conductance (so drivers hold nodes with kΩ-scale stiffness);
//! * [`gate_tunneling`] — direct oxide tunneling, split into channel,
//!   overlap-edge, and bulk components with correct signs for every
//!   bias polarity (the *cause* of the loading effect);
//! * [`btbt`] — halo-junction band-to-band tunneling (Kane model) plus
//!   an ideal-diode clamp.
//!
//! A [`Transistor`] assembles the mechanisms for either polarity;
//! [`DeviceDesign`] derives all electrical parameters from geometry and
//! doping so process perturbations propagate physically; [`Technology`]
//! bundles matched N/P pairs (the paper's `D25`, `D50`, and the
//! `D25-S`/`D25-G`/`D25-JN` flavors of Fig. 8).
//!
//! ## Quick example
//!
//! ```
//! use nanoleak_device::{Bias, Technology, Transistor};
//!
//! let tech = Technology::d25();
//! let nmos = Transistor::from_design(&tech.nmos);
//! // OFF NMOS of an inverter driving logic 1:
//! let (currents, parts) = nmos.leakage(Bias::new(0.0, tech.vdd, 0.0, 0.0), 300.0);
//! assert!(parts.sub > parts.gate && parts.gate > parts.btbt);
//! assert!(currents.kcl_residual().abs() < 1e-18);
//! ```

pub mod bias;
pub mod btbt;
pub mod consts;
pub mod design;
pub mod doping;
pub mod gate_tunneling;
pub mod geometry;
pub mod params;
pub mod perturb;
pub mod profiles;
pub mod subthreshold;
pub mod transistor;

pub use bias::{Bias, LeakageBreakdown, MosKind, TerminalCurrents};
pub use design::{DeviceDesign, FlavorScales, KindConstants};
pub use doping::Doping;
pub use geometry::Geometry;
pub use params::MosParams;
pub use perturb::Perturbation;
pub use profiles::Technology;
pub use transistor::Transistor;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_bias(vdd: f64) -> impl Strategy<Value = Bias> {
        let v = move || 0.0..=vdd;
        (v(), v(), v(), prop_oneof![Just(0.0), Just(0.9)])
            .prop_map(|(vg, vd, vs, vb)| Bias::new(vg, vd, vs, vb))
    }

    proptest! {
        /// Charge conservation holds at every bias for both polarities.
        #[test]
        fn kcl_residual_always_zero(bias in arb_bias(0.9), is_n in any::<bool>()) {
            let kind = if is_n { MosKind::Nmos } else { MosKind::Pmos };
            let t = Transistor::from_design(&DeviceDesign::nano25(kind));
            let tc = t.terminal_currents(bias, 300.0);
            prop_assert!(tc.kcl_residual().abs() < 1e-12);
        }

        /// Leakage magnitudes are finite and non-negative everywhere.
        #[test]
        fn breakdown_finite_nonnegative(bias in arb_bias(0.9), temp in 250.0f64..420.0) {
            let t = Transistor::from_design(&DeviceDesign::nano25(MosKind::Nmos));
            let (_, bd) = t.leakage(bias, temp);
            prop_assert!(bd.sub.is_finite() && bd.sub >= 0.0);
            prop_assert!(bd.gate.is_finite() && bd.gate >= 0.0);
            prop_assert!(bd.btbt.is_finite() && bd.btbt >= 0.0);
        }

        /// Terminal currents are continuous: small voltage steps cause
        /// proportionally small current steps (no jumps for Newton).
        #[test]
        fn currents_locally_continuous(bias in arb_bias(0.9)) {
            let t = Transistor::from_design(&DeviceDesign::nano25(MosKind::Nmos));
            let a = t.terminal_currents(bias, 300.0);
            let mut bias2 = bias;
            bias2.vd += 1e-7;
            let b = t.terminal_currents(bias2, 300.0);
            // Bounded by a generous global conductance of 1 S.
            prop_assert!((a.d - b.d).abs() < 1e-7);
        }

        /// OFF-device subthreshold leakage increases monotonically with
        /// gate voltage over the OFF range.
        #[test]
        fn sub_monotone_in_vgs(vg in 0.0f64..0.12) {
            let t = Transistor::from_design(&DeviceDesign::nano25(MosKind::Nmos));
            let (_, lo) = t.leakage(Bias::new(vg, 0.9, 0.0, 0.0), 300.0);
            let (_, hi) = t.leakage(Bias::new(vg + 0.01, 0.9, 0.0, 0.0), 300.0);
            prop_assert!(hi.sub >= lo.sub);
        }
    }
}
