//! Physical constants and silicon material parameters.
//!
//! Everything in this crate is expressed in SI units (amperes, volts,
//! meters, kelvins). The constants here are the only place where raw
//! physical magnitudes enter the models.

/// Elementary charge \[C\].
pub const Q: f64 = 1.602_176_634e-19;

/// Boltzmann constant \[J/K\].
pub const KB: f64 = 1.380_649e-23;

/// Vacuum permittivity \[F/m\].
pub const EPS0: f64 = 8.854_187_812_8e-12;

/// Relative permittivity of silicon.
pub const EPS_R_SI: f64 = 11.7;

/// Relative permittivity of SiO2.
pub const EPS_R_OX: f64 = 3.9;

/// Permittivity of silicon \[F/m\].
pub const EPS_SI: f64 = EPS_R_SI * EPS0;

/// Permittivity of SiO2 \[F/m\].
pub const EPS_OX: f64 = EPS_R_OX * EPS0;

/// Silicon band gap at 0 K \[eV\] (Varshni parameterization).
pub const EG_0K_EV: f64 = 1.17;

/// Varshni alpha for silicon \[eV/K\].
pub const VARSHNI_ALPHA: f64 = 4.73e-4;

/// Varshni beta for silicon \[K\].
pub const VARSHNI_BETA: f64 = 636.0;

/// Reference (room) temperature used for parameter extraction \[K\].
pub const T_REF: f64 = 300.0;

/// One nanoampere \[A\]; handy for reporting.
pub const NA: f64 = 1e-9;

/// One nanometer \[m\]; handy for geometry literals.
pub const NM: f64 = 1e-9;

/// Thermal voltage `kT/q` at temperature `t` \[V\].
///
/// # Examples
/// ```
/// let vt = nanoleak_device::consts::thermal_voltage(300.0);
/// assert!((vt - 0.02585).abs() < 1e-4);
/// ```
#[inline]
pub fn thermal_voltage(t: f64) -> f64 {
    KB * t / Q
}

/// Silicon band gap at temperature `t` \[eV\] (Varshni equation).
///
/// Narrows from 1.12 eV at 300 K to ~1.10 eV at 400 K, which is what makes
/// junction BTBT increase mildly with temperature (paper Fig. 4c).
///
/// # Examples
/// ```
/// let eg300 = nanoleak_device::consts::band_gap_ev(300.0);
/// assert!((eg300 - 1.12).abs() < 0.01);
/// ```
#[inline]
pub fn band_gap_ev(t: f64) -> f64 {
    EG_0K_EV - VARSHNI_ALPHA * t * t / (t + VARSHNI_BETA)
}

/// Intrinsic carrier concentration of silicon \[m^-3\].
///
/// Uses the common power-law/exponential fit; ~1.0e16 m^-3 (1e10 cm^-3)
/// near room temperature.
#[inline]
pub fn intrinsic_concentration(t: f64) -> f64 {
    // 5.29e19 cm^-3 * (T/300)^2.54 * exp(-6726/T), converted to m^-3.
    5.29e19 * 1e6 * (t / 300.0).powf(2.54) * (-6726.0 / t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_room_temperature() {
        assert!((thermal_voltage(300.0) - 0.025852).abs() < 1e-5);
    }

    #[test]
    fn thermal_voltage_scales_linearly() {
        assert!((thermal_voltage(600.0) / thermal_voltage(300.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn band_gap_narrows_with_temperature() {
        let e300 = band_gap_ev(300.0);
        let e400 = band_gap_ev(400.0);
        assert!(e300 > e400, "band gap must narrow as T rises");
        assert!((e300 - 1.124).abs() < 5e-3);
        assert!((e400 - 1.097).abs() < 5e-3);
    }

    #[test]
    fn intrinsic_concentration_room_temperature_order() {
        let ni = intrinsic_concentration(300.0);
        // ~1e10 cm^-3 == 1e16 m^-3, allow a factor ~2.
        assert!(ni > 4e15 && ni < 3e16, "ni(300K) = {ni:e}");
    }

    #[test]
    fn intrinsic_concentration_increases_with_temperature() {
        assert!(intrinsic_concentration(400.0) > 100.0 * intrinsic_concentration(300.0));
    }
}
