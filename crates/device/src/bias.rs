//! Bias points, terminal currents, and leakage breakdowns.

use serde::{Deserialize, Serialize};

/// N-channel or P-channel MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosKind {
    /// N-channel device (source-side carriers are electrons).
    Nmos,
    /// P-channel device (handled internally by the polarity transform
    /// `I_p(v) = -I_n(-v)` on an n-like core model with p-type parameters).
    Pmos,
}

impl MosKind {
    /// `true` for [`MosKind::Nmos`].
    #[inline]
    pub fn is_n(self) -> bool {
        matches!(self, MosKind::Nmos)
    }
}

/// Absolute node voltages at the four MOSFET terminals \[V\].
///
/// ```
/// use nanoleak_device::Bias;
/// // An OFF NMOS in an inverter with input 0, output 1 (VDD = 0.9 V):
/// let b = Bias::new(0.0, 0.9, 0.0, 0.0);
/// assert_eq!(b.vgs(), 0.0);
/// assert_eq!(b.vds(), 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bias {
    /// Gate node voltage.
    pub vg: f64,
    /// Drain node voltage.
    pub vd: f64,
    /// Source node voltage.
    pub vs: f64,
    /// Bulk (body) node voltage.
    pub vb: f64,
}

impl Bias {
    /// Creates a bias point from the four absolute node voltages.
    pub fn new(vg: f64, vd: f64, vs: f64, vb: f64) -> Self {
        Self { vg, vd, vs, vb }
    }

    /// Gate-to-source voltage.
    #[inline]
    pub fn vgs(&self) -> f64 {
        self.vg - self.vs
    }

    /// Drain-to-source voltage.
    #[inline]
    pub fn vds(&self) -> f64 {
        self.vd - self.vs
    }

    /// Gate-to-drain voltage.
    #[inline]
    pub fn vgd(&self) -> f64 {
        self.vg - self.vd
    }

    /// Source-to-bulk voltage.
    #[inline]
    pub fn vsb(&self) -> f64 {
        self.vs - self.vb
    }

    /// Drain-to-bulk voltage.
    #[inline]
    pub fn vdb(&self) -> f64 {
        self.vd - self.vb
    }

    /// All four voltages negated — the p-channel polarity transform.
    #[must_use]
    pub fn negated(&self) -> Self {
        Self { vg: -self.vg, vd: -self.vd, vs: -self.vs, vb: -self.vb }
    }

    /// Source and drain exchanged (the MOSFET is symmetric; the model
    /// core requires `vds >= 0`).
    #[must_use]
    pub fn swapped_ds(&self) -> Self {
        Self { vg: self.vg, vd: self.vs, vs: self.vd, vb: self.vb }
    }
}

/// Currents flowing **from each external node into the device terminal**
/// \[A\]. By construction they sum to zero (charge conservation), so the
/// device can be stamped directly into a nodal (KCL) formulation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TerminalCurrents {
    /// Into the drain terminal.
    pub d: f64,
    /// Into the gate terminal.
    pub g: f64,
    /// Into the source terminal.
    pub s: f64,
    /// Into the bulk terminal.
    pub b: f64,
}

impl TerminalCurrents {
    /// All-zero currents.
    pub const ZERO: Self = Self { d: 0.0, g: 0.0, s: 0.0, b: 0.0 };

    /// Residual of charge conservation; should be ~0 up to rounding.
    #[inline]
    pub fn kcl_residual(&self) -> f64 {
        self.d + self.g + self.s + self.b
    }

    /// All currents negated (used by the p-channel polarity transform).
    #[must_use]
    pub fn negated(&self) -> Self {
        Self { d: -self.d, g: -self.g, s: -self.s, b: -self.b }
    }

    /// Drain and source entries exchanged (undoes a source/drain swap).
    #[must_use]
    pub fn swapped_ds(&self) -> Self {
        Self { d: self.s, g: self.g, s: self.d, b: self.b }
    }
}

impl std::ops::Add for TerminalCurrents {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self { d: self.d + rhs.d, g: self.g + rhs.g, s: self.s + rhs.s, b: self.b + rhs.b }
    }
}

impl std::ops::AddAssign for TerminalCurrents {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

/// Magnitudes of the three leakage mechanisms of a device (or, summed,
/// of a gate / circuit) \[A\]. This is the quantity the paper plots and
/// tabulates: `I_total = I_sub + I_gate + I_btbt`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LeakageBreakdown {
    /// Subthreshold (weak-inversion drain-source) leakage.
    pub sub: f64,
    /// Gate direct-tunneling leakage (all oxide components).
    pub gate: f64,
    /// Junction band-to-band tunneling leakage.
    pub btbt: f64,
}

impl LeakageBreakdown {
    /// All-zero breakdown.
    pub const ZERO: Self = Self { sub: 0.0, gate: 0.0, btbt: 0.0 };

    /// Total leakage `sub + gate + btbt`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sub + self.gate + self.btbt
    }

    /// Component-wise scaling, e.g. for unit conversion or averaging.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        Self { sub: self.sub * k, gate: self.gate * k, btbt: self.btbt * k }
    }

    /// Component-wise relative difference `(self - base) / base`, with
    /// components of `base` below `floor` reported as 0 to avoid noise
    /// amplification. This is the paper's loading-effect metric (eq. 3).
    #[must_use]
    pub fn relative_to(&self, base: &Self, floor: f64) -> Self {
        let rel = |a: f64, b: f64| if b.abs() <= floor { 0.0 } else { (a - b) / b };
        Self {
            sub: rel(self.sub, base.sub),
            gate: rel(self.gate, base.gate),
            btbt: rel(self.btbt, base.btbt),
        }
    }
}

impl std::ops::Add for LeakageBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self { sub: self.sub + rhs.sub, gate: self.gate + rhs.gate, btbt: self.btbt + rhs.btbt }
    }
}

impl std::ops::AddAssign for LeakageBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for LeakageBreakdown {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self { sub: self.sub - rhs.sub, gate: self.gate - rhs.gate, btbt: self.btbt - rhs.btbt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_differences() {
        let b = Bias::new(0.9, 0.4, 0.1, 0.0);
        assert!((b.vgs() - 0.8).abs() < 1e-15);
        assert!((b.vds() - 0.3).abs() < 1e-15);
        assert!((b.vgd() - 0.5).abs() < 1e-15);
        assert!((b.vsb() - 0.1).abs() < 1e-15);
        assert!((b.vdb() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn negation_round_trips() {
        let b = Bias::new(0.9, 0.4, 0.1, 0.0);
        assert_eq!(b.negated().negated(), b);
    }

    #[test]
    fn swap_exchanges_d_and_s() {
        let b = Bias::new(0.9, 0.4, 0.1, 0.0).swapped_ds();
        assert_eq!(b.vd, 0.1);
        assert_eq!(b.vs, 0.4);
    }

    #[test]
    fn terminal_currents_add_and_negate() {
        let a = TerminalCurrents { d: 1.0, g: 2.0, s: -3.0, b: 0.0 };
        let c = a + a.negated();
        assert_eq!(c, TerminalCurrents::ZERO);
        assert_eq!(a.kcl_residual(), 0.0);
    }

    #[test]
    fn breakdown_total_and_relative() {
        let a = LeakageBreakdown { sub: 110.0, gate: 55.0, btbt: 11.0 };
        let b = LeakageBreakdown { sub: 100.0, gate: 50.0, btbt: 10.0 };
        assert!((a.total() - 176.0).abs() < 1e-12);
        let r = a.relative_to(&b, 1e-15);
        assert!((r.sub - 0.1).abs() < 1e-12);
        assert!((r.gate - 0.1).abs() < 1e-12);
        assert!((r.btbt - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_to_floors_tiny_baselines() {
        let a = LeakageBreakdown { sub: 1.0, gate: 0.0, btbt: 0.0 };
        let b = LeakageBreakdown { sub: 1e-20, gate: 1.0, btbt: 1.0 };
        let r = a.relative_to(&b, 1e-15);
        assert_eq!(r.sub, 0.0, "baseline below floor must report 0");
    }
}
