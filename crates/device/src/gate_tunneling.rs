//! Gate direct-tunneling current model.
//!
//! In the sub-1.5 nm oxide regime electrons (NMOS) or holes (PMOS)
//! tunnel directly through the gate oxide. Following the BSIM4
//! decomposition the paper uses (its Fig. 2/3), the model produces:
//!
//! * `Igc` — gate-to-channel current, present when the channel is
//!   inverted (ON device), partitioned into `Igcs`/`Igcd`;
//! * `Igso`, `Igdo` — gate-to-source/drain *overlap* (edge) tunneling,
//!   present whenever the gate-to-S/D voltage is non-zero — this is the
//!   component an OFF gate injects into the net that drives it, i.e. the
//!   root cause of the paper's loading effect;
//! * `Igb` — a small gate-to-bulk share.
//!
//! The tunneling density uses the standard direct-tunneling form
//!
//! ```text
//! J(V) = A (V/Tox)^2 exp( -B Tox (1 - (1 - |V|/phi_b)^1.5) / |V| )
//! ```
//!
//! which is exponential in `Tox` (Fig. 4b), super-linear in `V`, and
//! essentially temperature-independent (Fig. 4c).

use crate::consts::thermal_voltage;
use crate::params::{logistic, MosParams};

/// Signed gate tunneling components of the n-like core model \[A\].
/// Each value is the current flowing **from the gate into** the named
/// region (negative values flow into the gate).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateCurrents {
    /// Gate-to-channel, source-collected half.
    pub igcs: f64,
    /// Gate-to-channel, drain-collected half.
    pub igcd: f64,
    /// Gate-to-source-overlap edge current.
    pub igso: f64,
    /// Gate-to-drain-overlap edge current.
    pub igdo: f64,
    /// Gate-to-bulk current.
    pub igb: f64,
}

impl GateCurrents {
    /// Total current leaving the gate terminal \[A\] (signed).
    #[inline]
    pub fn gate_total(&self) -> f64 {
        self.igcs + self.igcd + self.igso + self.igdo + self.igb
    }

    /// Sum of component magnitudes \[A\] — the "gate leakage" the paper
    /// reports for a device.
    #[inline]
    pub fn magnitude(&self) -> f64 {
        self.igcs.abs() + self.igcd.abs() + self.igso.abs() + self.igdo.abs() + self.igb.abs()
    }
}

/// Direct-tunneling current density for a positive oxide voltage
/// \[A/m^2\]. Returns 0 for `vox <= 0`; use [`j_signed`] for the
/// polarity-aware version.
pub fn j_direct(p: &MosParams, vox: f64) -> f64 {
    if vox <= 0.0 {
        return 0.0;
    }
    let v = vox.min(p.phi_b_ev - 1e-3);
    let barrier = 1.0 - (1.0 - v / p.phi_b_ev).powf(1.5);
    let field = vox / p.tox;
    p.a_gate * field * field * (-p.b_gate * p.tox * barrier / v).exp()
}

/// Polarity-aware tunneling density: `sign(v) * J(|v|)` \[A/m^2\].
/// Positive result means conventional current flowing in the direction
/// of decreasing potential across the oxide.
#[inline]
pub fn j_signed(p: &MosParams, v: f64) -> f64 {
    if v >= 0.0 {
        j_direct(p, v)
    } else {
        -j_direct(p, -v)
    }
}

/// All gate tunneling components at the given n-like node voltages.
///
/// `vg`, `vd`, `vs`, `vb` are absolute node voltages; `t` the
/// temperature \[K\] (only a very weak dependence through the inversion
/// factor's thermal voltage).
pub fn components(p: &MosParams, vg: f64, vd: f64, vs: f64, vb: f64, t: f64) -> GateCurrents {
    let vt = thermal_voltage(t);
    // Channel tunneling requires an inverted channel: smooth inversion
    // factor keyed to vth at the source end.
    let vgs = vg - vs;
    let vds_abs = (vd - vs).abs();
    let vth = p.vth_eff(vds_abs, (vs - vb).max(0.0), t);
    let f_inv = logistic((vgs - vth) / (3.0 * p.m * vt));
    // When ON, vds ~ 0 and the channel sits near the source potential;
    // reference the oxide voltage to the channel midpoint for symmetry.
    let v_ch = 0.5 * (vs + vd);
    let area = p.w * p.l;
    let igc = f_inv * area * (1.0 - p.igb_frac) * j_signed(p, vg - v_ch);
    let igb = area * p.igb_frac * j_signed(p, vg - vb);
    // Edge (overlap) tunneling, present in ON and OFF states alike.
    let aov = p.w * p.lov;
    let igso = aov * j_signed(p, vg - vs);
    let igdo = aov * j_signed(p, vg - vd);
    GateCurrents { igcs: 0.5 * igc, igcd: 0.5 * igc, igso, igdo, igb }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{NA, NM};
    use crate::{DeviceDesign, MosKind};

    fn nmos() -> MosParams {
        DeviceDesign::nano25(MosKind::Nmos).derive()
    }

    fn pmos() -> MosParams {
        DeviceDesign::nano25(MosKind::Pmos).derive()
    }

    #[test]
    fn density_zero_without_bias() {
        assert_eq!(j_direct(&nmos(), 0.0), 0.0);
        assert_eq!(j_signed(&nmos(), 0.0), 0.0);
    }

    #[test]
    fn density_odd_in_voltage() {
        let p = nmos();
        assert_eq!(j_signed(&p, 0.5), -j_signed(&p, -0.5));
    }

    #[test]
    fn density_grows_superlinearly_with_voltage() {
        let p = nmos();
        let j1 = j_direct(&p, 0.45);
        let j2 = j_direct(&p, 0.90);
        assert!(j2 > 4.0 * j1, "ratio = {}", j2 / j1);
    }

    #[test]
    fn density_exponential_in_tox() {
        let mut p = nmos();
        let j_thin = j_direct(&p, 0.9);
        p.tox = 1.2 * NM;
        let j_thick = j_direct(&p, 0.9);
        // ~10x per 2 Angstrom is the textbook slope.
        assert!(j_thin / j_thick > 4.0 && j_thin / j_thick < 40.0, "slope = {}", j_thin / j_thick);
    }

    #[test]
    fn on_nmos_gate_current_magnitude() {
        // ON NMOS (inverter input '1'): gate-to-channel dominates, a
        // few hundred nA up to ~1 uA for W = 200 nm (the paper's Fig. 10
        // gate-leakage histogram spans to ~1.5 uA per inverter).
        let p = nmos();
        let gc = components(&p, 0.9, 0.0, 0.0, 0.0, 300.0);
        let total = gc.gate_total();
        assert!(total > 150.0 * NA && total < 1500.0 * NA, "Igc = {} nA", total / NA);
        // Current leaves the gate node (positive = gate -> channel).
        assert!(total > 0.0);
        assert!(gc.igcs > 0.0 && gc.igcd > 0.0);
    }

    #[test]
    fn off_nmos_edge_tunneling_into_gate() {
        // OFF NMOS with drain high (inverter input '0'): drain-overlap
        // current flows INTO the gate node (igdo < 0) — this is what
        // lifts a logic-0 input node above ground (loading effect).
        let p = nmos();
        let gc = components(&p, 0.0, 0.9, 0.0, 0.0, 300.0);
        assert!(gc.igdo < 0.0, "igdo = {} nA", gc.igdo / NA);
        assert!(gc.igdo.abs() > 1.0 * NA, "igdo = {} nA", gc.igdo / NA);
        // Channel not inverted: igc negligible compared to overlap.
        assert!(gc.igcs.abs() + gc.igcd.abs() < 0.5 * gc.igdo.abs());
    }

    #[test]
    fn pmos_tunneling_much_weaker_than_nmos() {
        let jn = j_direct(&nmos(), 0.9);
        let jp = j_direct(&pmos(), 0.9);
        assert!(jn / jp > 3.0 && jn / jp < 40.0, "n/p = {}", jn / jp);
    }

    #[test]
    fn nearly_temperature_independent() {
        let p = nmos();
        let g300 = components(&p, 0.9, 0.0, 0.0, 0.0, 300.0).magnitude();
        let g400 = components(&p, 0.9, 0.0, 0.0, 0.0, 400.0).magnitude();
        let rel = (g400 - g300).abs() / g300;
        assert!(rel < 0.05, "gate leakage moved {}% over 100K", rel * 100.0);
    }

    #[test]
    fn magnitude_counts_all_components() {
        let gc = GateCurrents { igcs: 1.0, igcd: -1.0, igso: 2.0, igdo: -3.0, igb: 0.5 };
        assert_eq!(gc.magnitude(), 7.5);
        assert_eq!(gc.gate_total(), -0.5);
    }
}
