//! Doping profile description.
//!
//! The paper's devices use "super halo" profiles (MIT well-tempered
//! device): a heavily doped halo around the source/drain extensions
//! suppresses short-channel effects but intensifies the junction field,
//! trading subthreshold leakage against junction band-to-band tunneling
//! (paper Fig. 4a). We capture that with three scalar concentrations.

use serde::{Deserialize, Serialize};

/// Doping concentrations of a halo-implanted bulk MOSFET \[m^-3\].
///
/// ```
/// use nanoleak_device::Doping;
/// let d = Doping::super_halo_25nm();
/// assert!(d.n_halo > d.n_sub);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Doping {
    /// Halo (pocket) peak concentration \[m^-3\]. Controls the
    /// drain/source junction field and hence BTBT, and tightens the
    /// channel depletion width (less SCE).
    pub n_halo: f64,
    /// Background substrate/well concentration \[m^-3\].
    pub n_sub: f64,
    /// Source/drain doping \[m^-3\] (degenerate), enters the built-in
    /// potential of the junction.
    pub n_sd: f64,
}

impl Doping {
    /// Creates a profile from the three concentrations \[m^-3\].
    ///
    /// # Panics
    /// Panics if any concentration is not strictly positive.
    pub fn new(n_halo: f64, n_sub: f64, n_sd: f64) -> Self {
        assert!(
            n_halo > 0.0 && n_sub > 0.0 && n_sd > 0.0,
            "doping concentrations must be positive"
        );
        Self { n_halo, n_sub, n_sd }
    }

    /// Super-halo profile of the 25 nm device:
    /// halo 1.2e19 cm^-3, substrate 4e18 cm^-3, S/D 1e20 cm^-3.
    pub fn super_halo_25nm() -> Self {
        Self::new(1.2e25, 4.0e24, 1.0e26)
    }

    /// Super-halo profile of the 50 nm device (milder halo).
    pub fn super_halo_50nm() -> Self {
        Self::new(8.0e24, 3.0e24, 1.0e26)
    }

    /// Returns a copy with a different halo concentration \[m^-3\];
    /// used by the Fig. 4a halo sweep.
    #[must_use]
    pub fn with_halo(mut self, n_halo: f64) -> Self {
        assert!(n_halo > 0.0, "doping concentrations must be positive");
        self.n_halo = n_halo;
        self
    }

    /// Effective channel depletion doping \[m^-3\]: geometric mean of the
    /// halo and substrate concentrations. The halo occupies only part of
    /// the channel, so the threshold/body-effect doping sits between the
    /// two; the geometric mean is the standard lumped approximation.
    #[inline]
    pub fn n_channel_eff(&self) -> f64 {
        (self.n_halo * self.n_sub).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_doping_between_halo_and_substrate() {
        let d = Doping::super_halo_25nm();
        let eff = d.n_channel_eff();
        assert!(eff > d.n_sub && eff < d.n_halo);
    }

    #[test]
    fn with_halo_only_changes_halo() {
        let d = Doping::super_halo_25nm().with_halo(2.0e25);
        assert_eq!(d.n_halo, 2.0e25);
        assert_eq!(d.n_sub, Doping::super_halo_25nm().n_sub);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_doping_rejected() {
        let _ = Doping::new(-1.0, 1.0, 1.0);
    }
}
