//! The assembled four-terminal transistor leakage model.
//!
//! [`Transistor`] combines the three mechanism models
//! ([`crate::subthreshold`], [`crate::gate_tunneling`], [`crate::btbt`])
//! into KCL-ready terminal currents plus the per-mechanism breakdown the
//! paper reports. P-channel devices are realized with the polarity
//! transform `I_p(v) = -I_n(-v)` over an n-like core, and the core
//! handles the MOSFET's source/drain symmetry by normalizing to
//! `vds >= 0`.

use serde::{Deserialize, Serialize};

use crate::bias::{Bias, LeakageBreakdown, TerminalCurrents};
use crate::params::{logistic, MosParams};
use crate::{btbt, gate_tunneling, subthreshold, DeviceDesign, MosKind};

/// A four-terminal MOSFET with derived electrical parameters.
///
/// ```
/// use nanoleak_device::{Bias, DeviceDesign, MosKind, Transistor};
/// let t = Transistor::new(DeviceDesign::nano25(MosKind::Nmos).derive());
/// // OFF NMOS, drain at VDD: leaks through all three mechanisms.
/// let (tc, bd) = t.leakage(Bias::new(0.0, 0.9, 0.0, 0.0), 300.0);
/// assert!(bd.sub > 0.0 && bd.gate > 0.0 && bd.btbt > 0.0);
/// assert!(tc.kcl_residual().abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transistor {
    params: MosParams,
}

impl Transistor {
    /// Wraps derived parameters.
    pub fn new(params: MosParams) -> Self {
        Self { params }
    }

    /// Builds directly from a design (`design.derive()`).
    pub fn from_design(design: &DeviceDesign) -> Self {
        Self::new(design.derive())
    }

    /// The electrical parameters.
    pub fn params(&self) -> &MosParams {
        &self.params
    }

    /// Device polarity.
    pub fn kind(&self) -> MosKind {
        self.params.kind
    }

    /// Returns a copy with the channel width scaled by `k` (standard-cell
    /// sizing of series stacks / parallel fingers).
    #[must_use]
    pub fn scaled_width(&self, k: f64) -> Self {
        assert!(k > 0.0, "width scale must be positive");
        let mut p = self.params;
        p.w *= k;
        Self::new(p)
    }

    /// Full leakage evaluation at absolute node voltages `bias` and
    /// temperature `t` \[K\].
    ///
    /// Returns the KCL-ready terminal currents (current from each node
    /// *into* the device; they sum to zero) and the mechanism breakdown
    /// (all magnitudes, attribution per the paper's eq. 6: channel
    /// current counts as subthreshold leakage only for an OFF device —
    /// an ON device merely conducts other devices' leakage).
    pub fn leakage(&self, bias: Bias, t: f64) -> (TerminalCurrents, LeakageBreakdown) {
        match self.params.kind {
            MosKind::Nmos => Self::core(&self.params, bias, t),
            MosKind::Pmos => {
                let (tc, bd) = Self::core(&self.params, bias.negated(), t);
                (tc.negated(), bd)
            }
        }
    }

    /// Terminal currents only (convenience for solvers).
    pub fn terminal_currents(&self, bias: Bias, t: f64) -> TerminalCurrents {
        self.leakage(bias, t).0
    }

    /// N-like core: normalizes source/drain order then assembles the
    /// three mechanisms.
    fn core(p: &MosParams, bias: Bias, t: f64) -> (TerminalCurrents, LeakageBreakdown) {
        if bias.vd < bias.vs {
            let (tc, bd) = Self::core_ordered(p, bias.swapped_ds(), t);
            return (tc.swapped_ds(), bd);
        }
        Self::core_ordered(p, bias, t)
    }

    fn core_ordered(p: &MosParams, bias: Bias, t: f64) -> (TerminalCurrents, LeakageBreakdown) {
        debug_assert!(bias.vd >= bias.vs);
        let mut tc = TerminalCurrents::ZERO;

        // Channel (subthreshold / ON) current, drain -> source.
        let i_ch = subthreshold::ids(p, bias.vgs(), bias.vds(), bias.vsb(), t);
        tc.d += i_ch;
        tc.s -= i_ch;

        // Gate oxide tunneling.
        let gc = gate_tunneling::components(p, bias.vg, bias.vd, bias.vs, bias.vb, t);
        tc.g += gc.gate_total();
        tc.s -= gc.igcs + gc.igso;
        tc.d -= gc.igcd + gc.igdo;
        tc.b -= gc.igb;

        // Junction currents (BTBT + diode) at both junctions.
        let jd = btbt::junction_current(p, bias.vdb(), t);
        let js = btbt::junction_current(p, bias.vsb(), t);
        tc.d += jd;
        tc.b -= jd;
        tc.s += js;
        tc.b -= js;

        // Breakdown: channel current is "subthreshold leakage" only if
        // the device is OFF, gate counts every oxide component, BTBT
        // counts the pure tunneling part. The ON/OFF classifier is a
        // logic-state detector (midpoint well above any leakage-state
        // node excursion, fixed 25 mV width) so that mV-scale loading
        // shifts and temperature-induced Vth drift never leak into the
        // attribution itself.
        let off_weight = 1.0 - logistic((bias.vgs() - (p.vth0 + 0.15)) / 0.025);
        let bd = LeakageBreakdown {
            sub: i_ch.abs() * off_weight,
            gate: gc.magnitude(),
            btbt: btbt::ibtbt(p, bias.vdb(), t) + btbt::ibtbt(p, bias.vsb(), t),
        };
        (tc, bd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::NA;

    fn nmos() -> Transistor {
        Transistor::from_design(&DeviceDesign::nano25(MosKind::Nmos))
    }

    fn pmos() -> Transistor {
        Transistor::from_design(&DeviceDesign::nano25(MosKind::Pmos))
    }

    #[test]
    fn kcl_residual_is_zero() {
        for t in [&nmos(), &pmos()] {
            for bias in [
                Bias::new(0.0, 0.9, 0.0, 0.0),
                Bias::new(0.9, 0.9, 0.0, 0.0),
                Bias::new(0.9, 0.02, 0.9, 0.9),
                Bias::new(0.45, 0.7, 0.1, 0.0),
            ] {
                let tc = t.terminal_currents(bias, 300.0);
                assert!(
                    tc.kcl_residual().abs() < 1e-15,
                    "residual {} at {bias:?}",
                    tc.kcl_residual()
                );
            }
        }
    }

    #[test]
    fn off_nmos_drains_current_from_drain_node() {
        // OFF NMOS in inverter (input 0, output 1): subthreshold current
        // enters at the drain (output) node.
        let (tc, bd) = nmos().leakage(Bias::new(0.0, 0.9, 0.0, 0.0), 300.0);
        assert!(tc.d > 100.0 * NA, "drain current = {} nA", tc.d / NA);
        assert!(bd.sub > 100.0 * NA);
        assert!(bd.sub > bd.gate && bd.gate > bd.btbt, "sub-dominated device: {bd:?}");
    }

    #[test]
    fn off_nmos_feeds_its_gate_node() {
        // Edge tunneling pushes current INTO the gate node of an OFF
        // NMOS with a high drain — the loading-effect source current.
        let tc = nmos().terminal_currents(Bias::new(0.0, 0.9, 0.0, 0.0), 300.0);
        assert!(tc.g < -NA, "gate current = {} nA", tc.g / NA);
    }

    #[test]
    fn on_nmos_draws_from_its_gate_node() {
        // ON NMOS (gate high): gate-to-channel tunneling pulls current
        // out of the driving node (vin drops below VDD).
        let tc = nmos().terminal_currents(Bias::new(0.9, 0.0, 0.0, 0.0), 300.0);
        assert!(tc.g > 10.0 * NA, "gate current = {} nA", tc.g / NA);
    }

    #[test]
    fn on_nmos_reports_no_subthreshold_leakage() {
        let (_, bd) = nmos().leakage(Bias::new(0.9, 0.001, 0.0, 0.0), 300.0);
        assert!(bd.sub < 1.0 * NA, "ON device sub attribution = {} nA", bd.sub / NA);
    }

    #[test]
    fn pmos_polarity_mirror() {
        // OFF PMOS in inverter (input 1, output 0): source at VDD,
        // drain at 0, gate at VDD, bulk at VDD.
        let (tc, bd) = pmos().leakage(Bias::new(0.9, 0.0, 0.9, 0.9), 300.0);
        // Subthreshold flows source(VDD) -> drain(0): current enters at
        // source, exits at drain node.
        assert!(tc.s > 100.0 * NA, "source current = {} nA", tc.s / NA);
        assert!(tc.d < 0.0);
        assert!(bd.sub > 100.0 * NA);
        assert!(bd.btbt > 0.5 * NA, "PMOS drain junction BTBT = {} nA", bd.btbt / NA);
    }

    #[test]
    fn off_pmos_feeds_its_gate_node() {
        // OFF PMOS (gate at VDD, drain at 0): |vgd| = VDD across the
        // drain overlap; the p-polarity makes the current flow INTO the
        // device at the gate (the logic-1 input node is pulled DOWN).
        let tc = pmos().terminal_currents(Bias::new(0.9, 0.0, 0.9, 0.9), 300.0);
        assert!(tc.g > 0.0, "gate current = {} nA", tc.g / NA);
    }

    #[test]
    fn on_pmos_pushes_into_its_gate_node() {
        // ON PMOS (gate at 0, source at VDD): channel tunneling pushes
        // current out of the device into the gate node (logic-0 input
        // node is lifted UP). Mirrors the ON-NMOS case.
        let tc = pmos().terminal_currents(Bias::new(0.0, 0.9, 0.9, 0.9), 300.0);
        assert!(tc.g < 0.0, "gate current = {} nA", tc.g / NA);
    }

    #[test]
    fn source_drain_swap_is_consistent() {
        // Evaluating with swapped terminal labels must give swapped
        // currents (device symmetry).
        let t = nmos();
        let a = t.terminal_currents(Bias::new(0.4, 0.9, 0.1, 0.0), 300.0);
        let b = t.terminal_currents(Bias::new(0.4, 0.1, 0.9, 0.0), 300.0);
        assert!((a.d - b.s).abs() < 1e-18);
        assert!((a.s - b.d).abs() < 1e-18);
        assert!((a.g - b.g).abs() < 1e-18);
    }

    #[test]
    fn width_scaling_scales_leakage() {
        let t = nmos();
        let (_, b1) = t.leakage(Bias::new(0.0, 0.9, 0.0, 0.0), 300.0);
        let (_, b2) = t.scaled_width(2.0).leakage(Bias::new(0.0, 0.9, 0.0, 0.0), 300.0);
        assert!((b2.total() / b1.total() - 2.0).abs() < 0.01);
    }
}
