//! Device design: the inputs a process/device engineer controls.
//!
//! A [`DeviceDesign`] bundles geometry, doping and a leakage "flavor"
//! (calibration multipliers), and [`DeviceDesign::derive`] turns it into
//! the electrical [`MosParams`] used by the current models. Keeping the
//! derivation explicit is what lets process variation (ΔL, ΔTox, ΔVth)
//! flow through to *all* dependent electrical parameters, exactly as in
//! the paper's Monte-Carlo study (Section 5.3).

use serde::{Deserialize, Serialize};

use crate::consts::{intrinsic_concentration, thermal_voltage, EPS_OX, EPS_SI, Q, T_REF};
use crate::doping::Doping;
use crate::geometry::Geometry;
use crate::params::MosParams;
use crate::MosKind;

/// Calibration multipliers that re-balance the three leakage components
/// without changing the underlying physics. Used to realize the paper's
/// `D25-S` / `D25-G` / `D25-JN` devices (Section 5.1), which have equal
/// total leakage but a different dominant mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlavorScales {
    /// Multiplier on the gate direct-tunneling transmission coefficient.
    pub gate_mult: f64,
    /// Multiplier on the junction BTBT coefficient.
    pub btbt_mult: f64,
    /// Additive shift on the threshold voltage \[V\] (moves subthreshold
    /// leakage exponentially).
    pub vth_shift: f64,
}

impl FlavorScales {
    /// Neutral flavor: physics as derived, no re-balancing.
    pub const NEUTRAL: Self = Self { gate_mult: 1.0, btbt_mult: 1.0, vth_shift: 0.0 };
}

impl Default for FlavorScales {
    fn default() -> Self {
        Self::NEUTRAL
    }
}

/// Per-polarity technology constants: the fixed, kind-dependent numbers
/// of the compact models (mobilities, tunneling barriers, calibration
/// anchors). These encode the NMOS/PMOS asymmetries the paper's analysis
/// rests on:
///
/// * PMOS has the worse short-channel effect — larger DIBL prefactor and
///   larger interface/depletion capacitance (worse subthreshold swing),
///   so PMOS subthreshold leakage is *less* sensitive to `Vgs` and
///   *more* sensitive to `Vds` than NMOS (paper Section 4).
/// * NMOS gate tunneling (electrons, 3.1 eV barrier) is roughly an order
///   of magnitude stronger than PMOS (holes, 4.5 eV barrier).
/// * PMOS junction BTBT is a few times larger than NMOS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KindConstants {
    /// Flat-band + workfunction lump entering the long-channel Vth \[V\].
    pub vth_fb: f64,
    /// Interface-state capacitance adding to the depletion capacitance
    /// in the subthreshold swing factor \[F/m^2\].
    pub cit: f64,
    /// DIBL prefactor; `eta = eta0 * exp(-L / (2 lambda))`.
    pub eta0: f64,
    /// Vth roll-off prefactor \[V\]; same exponential length dependence.
    pub dvth_rolloff0: f64,
    /// Threshold temperature coefficient \[V/K\].
    pub kappa_t: f64,
    /// Low-field mobility at `T_REF` \[m^2/Vs\].
    pub mu0: f64,
    /// Mobility temperature exponent; `mu(T) = mu0 (T/300)^(-mu_exp)`.
    pub mu_exp: f64,
    /// Mobility degradation / series-resistance factor \[1/V\]; sets the
    /// ON-state conductance that determines how stiffly a driver holds a
    /// node against loading currents.
    pub theta: f64,
    /// Gate direct-tunneling transmission prefactor \[A/V^2\].
    pub a_gate: f64,
    /// Gate direct-tunneling exponent slope \[1/m\].
    pub b_gate: f64,
    /// Tunneling barrier height \[eV\] (3.1 electrons / 4.5 holes).
    pub phi_b_ev: f64,
    /// Fraction of gate-area tunneling attributed to the bulk (Igb).
    pub igb_frac: f64,
    /// Junction BTBT prefactor (Kane model, folded junction area/depth).
    pub c_btbt: f64,
    /// Junction BTBT exponent slope \[V/m per eV^1.5\].
    pub b_btbt: f64,
    /// Junction thermal saturation current per width \[A/m\]; provides
    /// the forward-bias clamp and a negligible reverse floor.
    pub i_s_w: f64,
}

impl KindConstants {
    /// NMOS technology constants for the paper's super-halo bulk process.
    pub fn nmos() -> Self {
        Self {
            vth_fb: -0.213,
            cit: 4.5e-3,
            eta0: 0.72,
            dvth_rolloff0: 0.25,
            kappa_t: 0.9e-3,
            mu0: 0.030,
            mu_exp: 1.5,
            theta: 5.0,
            a_gate: 1.8e-5,
            b_gate: 2.6e10,
            phi_b_ev: 3.1,
            igb_frac: 0.02,
            c_btbt: 0.29,
            b_btbt: 5.0e9,
            i_s_w: 1.0e-6,
        }
    }

    /// PMOS technology constants (see the type docs for the asymmetries).
    pub fn pmos() -> Self {
        Self {
            vth_fb: -0.168,
            cit: 9.7e-3,
            eta0: 1.10,
            dvth_rolloff0: 0.25,
            kappa_t: 0.8e-3,
            mu0: 0.012,
            mu_exp: 1.2,
            theta: 1.5,
            a_gate: 5.1e-7,
            b_gate: 3.2e10,
            phi_b_ev: 4.5,
            igb_frac: 0.02,
            c_btbt: 0.58,
            b_btbt: 5.0e9,
            i_s_w: 1.0e-6,
        }
    }

    /// The constants for a given polarity.
    pub fn for_kind(kind: MosKind) -> Self {
        match kind {
            MosKind::Nmos => Self::nmos(),
            MosKind::Pmos => Self::pmos(),
        }
    }
}

/// A complete device design: polarity, geometry, doping, technology
/// constants and flavor multipliers.
///
/// ```
/// use nanoleak_device::{DeviceDesign, MosKind};
/// let n = DeviceDesign::nano25(MosKind::Nmos);
/// let p = n.derive();
/// assert!(p.vth0 > 0.1 && p.vth0 < 0.35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceDesign {
    /// N- or P-channel.
    pub kind: MosKind,
    /// Physical geometry.
    pub geometry: Geometry,
    /// Doping profile.
    pub doping: Doping,
    /// Per-polarity technology constants.
    pub constants: KindConstants,
    /// Leakage-balance calibration multipliers.
    pub flavor: FlavorScales,
}

impl DeviceDesign {
    /// The 25 nm device of the paper's loading study (Sections 4–5), with
    /// the PMOS drawn at twice the NMOS width as in the standard-cell
    /// library.
    pub fn nano25(kind: MosKind) -> Self {
        let geometry = match kind {
            MosKind::Nmos => Geometry::nano25(),
            MosKind::Pmos => Geometry::nano25().with_width(400e-9),
        };
        Self {
            kind,
            geometry,
            doping: Doping::super_halo_25nm(),
            constants: KindConstants::for_kind(kind),
            flavor: FlavorScales::NEUTRAL,
        }
    }

    /// The 50 nm device of Section 2.1 (used for the Fig. 4 component
    /// sweeps); longer channel, slightly thicker oxide, strong halo.
    pub fn nano50(kind: MosKind) -> Self {
        let geometry = match kind {
            MosKind::Nmos => Geometry::nano50(),
            MosKind::Pmos => Geometry::nano50().with_width(400e-9),
        };
        Self {
            kind,
            geometry,
            doping: Doping::new(1.4e25, 3.0e24, 1.0e26),
            constants: KindConstants::for_kind(kind),
            flavor: FlavorScales::NEUTRAL,
        }
    }

    /// Returns a copy with different flavor multipliers.
    #[must_use]
    pub fn with_flavor(mut self, flavor: FlavorScales) -> Self {
        self.flavor = flavor;
        self
    }

    /// Returns a copy with a different geometry.
    #[must_use]
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Returns a copy with a different doping profile.
    #[must_use]
    pub fn with_doping(mut self, doping: Doping) -> Self {
        self.doping = doping;
        self
    }

    /// Derives the electrical parameters from the design.
    ///
    /// The derivation chain (all at `T_REF`):
    /// * `Cox = eps_ox / Tox`
    /// * surface potential `phi_s = min(2 phi_F, 1.05)` from the
    ///   effective channel doping,
    /// * depletion width `x_dep` and capacitance `C_dm`, giving the
    ///   swing factor `m = 1 + (C_dm + C_it)/Cox`,
    /// * short-channel natural length
    ///   `lambda = sqrt(eps_si/eps_ox * Tox * x_dep)`, giving DIBL
    ///   `eta = eta0 exp(-L/2lambda)` and the Vth roll-off — this is how
    ///   thicker oxide *increases* subthreshold leakage (Fig. 4b) and a
    ///   stronger halo *decreases* it (Fig. 4a),
    /// * body factor `gamma = sqrt(2 q eps_si N_eff)/Cox` and
    ///   `Vth0 = vth_fb + gamma sqrt(phi_s) - roll-off + vth_shift`,
    /// * junction built-in potential and BTBT field prefactor from the
    ///   halo doping.
    pub fn derive(&self) -> MosParams {
        let g = &self.geometry;
        let c = &self.constants;
        let cox = EPS_OX / g.tox;
        let vt = thermal_voltage(T_REF);
        let ni = intrinsic_concentration(T_REF);

        let n_eff = self.doping.n_channel_eff();
        let phi_f = vt * (n_eff / ni).ln();
        let phi_s = (2.0 * phi_f).min(1.05);

        let x_dep = (2.0 * EPS_SI * phi_s / (Q * n_eff)).sqrt();
        let cdm = EPS_SI / x_dep;
        let m = 1.0 + (cdm + c.cit) / cox;

        let lambda = (EPS_SI / EPS_OX * g.tox * x_dep).sqrt();
        let sce = (-g.l / (2.0 * lambda)).exp();
        let eta = c.eta0 * sce;
        let rolloff = c.dvth_rolloff0 * sce;

        let gamma = (2.0 * Q * EPS_SI * n_eff).sqrt() / cox;
        let vth0 = c.vth_fb + gamma * phi_s.sqrt() - rolloff + self.flavor.vth_shift;

        let psi_bi = (vt * (self.doping.n_halo * self.doping.n_sd / (ni * ni)).ln()).min(1.05);

        MosParams {
            kind: self.kind,
            w: g.w,
            l: g.l,
            lov: g.lov,
            tox: g.tox,
            cox,
            vth0,
            m,
            gamma,
            phi_s,
            eta,
            kappa_t: c.kappa_t,
            mu0: c.mu0,
            mu_exp: c.mu_exp,
            theta: c.theta,
            a_gate: c.a_gate * self.flavor.gate_mult,
            b_gate: c.b_gate,
            phi_b_ev: c.phi_b_ev,
            igb_frac: c.igb_frac,
            c_btbt: c.c_btbt * self.flavor.btbt_mult,
            b_btbt: c.b_btbt,
            psi_bi,
            n_halo: self.doping.n_halo,
            i_s_w: c.i_s_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::NM;

    #[test]
    fn derived_params_in_expected_ranges() {
        let p = DeviceDesign::nano25(MosKind::Nmos).derive();
        assert!(p.vth0 > 0.15 && p.vth0 < 0.30, "vth0 = {}", p.vth0);
        assert!(p.m > 1.2 && p.m < 1.5, "m = {}", p.m);
        assert!(p.eta > 0.05 && p.eta < 0.20, "eta = {}", p.eta);
        assert!(p.gamma > 0.2 && p.gamma < 0.7, "gamma = {}", p.gamma);
        assert!(p.psi_bi > 0.8 && p.psi_bi <= 1.05, "psi_bi = {}", p.psi_bi);
    }

    #[test]
    fn pmos_has_worse_short_channel_behavior() {
        let n = DeviceDesign::nano25(MosKind::Nmos).derive();
        let p = DeviceDesign::nano25(MosKind::Pmos).derive();
        assert!(p.eta > n.eta, "PMOS DIBL must exceed NMOS (paper Section 4)");
        assert!(p.m > n.m, "PMOS swing factor must exceed NMOS (paper Section 4)");
    }

    #[test]
    fn stronger_halo_raises_vth_and_reduces_dibl() {
        let base = DeviceDesign::nano25(MosKind::Nmos);
        let strong = base.with_doping(Doping::super_halo_25nm().with_halo(2.4e25));
        let (pb, ps) = (base.derive(), strong.derive());
        assert!(ps.vth0 > pb.vth0, "halo up => vth up");
        assert!(ps.eta < pb.eta, "halo up => DIBL down");
    }

    #[test]
    fn thicker_oxide_increases_dibl() {
        let base = DeviceDesign::nano25(MosKind::Nmos);
        let thick = base.with_geometry(Geometry::nano25().with_tox(1.4 * NM));
        assert!(thick.derive().eta > base.derive().eta, "tox up => SCE up (Fig. 4b)");
    }

    #[test]
    fn longer_channel_reduces_dibl() {
        let d25 = DeviceDesign::nano25(MosKind::Nmos).derive();
        let d50 = DeviceDesign::nano50(MosKind::Nmos).derive();
        assert!(d50.eta < 0.3 * d25.eta, "50 nm device must have far less DIBL");
    }

    #[test]
    fn flavor_scales_apply() {
        let base = DeviceDesign::nano25(MosKind::Nmos);
        let flav =
            base.with_flavor(FlavorScales { gate_mult: 2.0, btbt_mult: 3.0, vth_shift: 0.05 });
        let (pb, pf) = (base.derive(), flav.derive());
        assert!((pf.a_gate / pb.a_gate - 2.0).abs() < 1e-12);
        assert!((pf.c_btbt / pb.c_btbt - 3.0).abs() < 1e-12);
        assert!((pf.vth0 - pb.vth0 - 0.05).abs() < 1e-12);
    }
}
