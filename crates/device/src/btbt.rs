//! Junction band-to-band tunneling (BTBT) current model.
//!
//! The halo implants that tame short-channel effects dope the
//! source/drain junctions so heavily that, under reverse bias (OFF
//! transistor with drain at VDD), electrons tunnel from the valence band
//! of the p-side to the conduction band of the n-side. We use Kane's
//! model with the peak field of a one-sided step junction:
//!
//! ```text
//! E(Vr)  = sqrt(2 q N_halo (Vr + psi_bi) / eps_si)
//! Ibtbt  = C W E Vr / sqrt(Eg) * exp(-B Eg^1.5 / E)
//! ```
//!
//! It is exponential in the halo doping (Fig. 4a), nearly independent of
//! `Tox` (Fig. 4b), and rises mildly with temperature through the
//! Varshni band-gap narrowing (Fig. 4c). A small ideal-diode term
//! provides the forward-bias clamp and keeps circuit nodes physical.

use crate::consts::{band_gap_ev, thermal_voltage, EPS_SI, Q};
use crate::params::MosParams;

/// Pure BTBT tunneling current of one junction at reverse bias `vr`
/// \[A\]; zero for `vr <= 0`.
pub fn ibtbt(p: &MosParams, vr: f64, t: f64) -> f64 {
    if vr <= 0.0 {
        return 0.0;
    }
    let eg = band_gap_ev(t);
    let e = junction_field(p, vr);
    p.c_btbt * p.w * e * vr / eg.sqrt() * (-p.b_btbt * eg.powf(1.5) / e).exp()
}

/// Peak junction field of the halo-doped one-sided junction \[V/m\].
#[inline]
pub fn junction_field(p: &MosParams, vr: f64) -> f64 {
    (2.0 * Q * p.n_halo * (vr + p.psi_bi).max(0.05) / EPS_SI).sqrt()
}

/// Net junction current from the n+ terminal into the bulk \[A\]:
/// BTBT plus the ideal-diode term
/// `I_s W (1 - exp(-vr / vt))` (reverse: tiny positive floor; forward:
/// exponential clamp pulling the terminal back toward the bulk).
pub fn junction_current(p: &MosParams, vr: f64, t: f64) -> f64 {
    let vt = thermal_voltage(t);
    let is = p.i_s_w * p.w;
    // Cap the forward exponential so the solver never sees infinities
    // (exp(25) * I_s ~ 10 mA is already a hard clamp at this scale).
    let diode = is * (1.0 - (-vr / vt).min(25.0).exp());
    ibtbt(p, vr, t) + diode
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::NA;
    use crate::{DeviceDesign, MosKind};

    fn nmos() -> MosParams {
        DeviceDesign::nano25(MosKind::Nmos).derive()
    }

    fn pmos() -> MosParams {
        DeviceDesign::nano25(MosKind::Pmos).derive()
    }

    #[test]
    fn magnitude_in_calibrated_range() {
        // Fig. 10 puts inverter junction leakage at ~5-20 nA total; a
        // single NMOS junction at full reverse bias is a few nA.
        let i = ibtbt(&nmos(), 0.9, 300.0);
        assert!(i > 0.5 * NA && i < 20.0 * NA, "Ibtbt = {} nA", i / NA);
    }

    #[test]
    fn pmos_junction_leaks_more() {
        // Paper Section 4: "PMOS has a larger junction BTBT current".
        let in_ = ibtbt(&nmos(), 0.9, 300.0);
        let ip = ibtbt(&pmos(), 0.9, 300.0);
        assert!(ip > 2.0 * in_, "p/n = {}", ip / in_);
    }

    #[test]
    fn zero_for_forward_or_zero_bias() {
        assert_eq!(ibtbt(&nmos(), 0.0, 300.0), 0.0);
        assert_eq!(ibtbt(&nmos(), -0.3, 300.0), 0.0);
    }

    #[test]
    fn strongly_increases_with_reverse_bias() {
        let p = nmos();
        let lo = ibtbt(&p, 0.45, 300.0);
        let hi = ibtbt(&p, 0.90, 300.0);
        assert!(hi / lo > 3.0, "bias ratio = {}", hi / lo);
    }

    #[test]
    fn exponential_in_halo_doping() {
        let mut p = nmos();
        let base = ibtbt(&p, 0.9, 300.0);
        p.n_halo *= 2.0;
        let strong = ibtbt(&p, 0.9, 300.0);
        assert!(strong / base > 20.0, "doping ratio = {}", strong / base);
    }

    #[test]
    fn mildly_increases_with_temperature() {
        let p = nmos();
        let i300 = ibtbt(&p, 0.9, 300.0);
        let i400 = ibtbt(&p, 0.9, 400.0);
        let ratio = i400 / i300;
        assert!(ratio > 1.05 && ratio < 4.0, "T ratio = {ratio} (must be mild)");
    }

    #[test]
    fn diode_clamps_forward_bias() {
        let p = nmos();
        // 0.5 V forward bias must produce a large negative (bulk->terminal)
        // current that would pull the node back.
        let i = junction_current(&p, -0.5, 300.0);
        assert!(i < -1e-7, "forward clamp = {} A", i);
        // Deep reverse: essentially the BTBT value plus a tiny floor.
        let r = junction_current(&p, 0.9, 300.0);
        assert!((r - ibtbt(&p, 0.9, 300.0)).abs() < 1e-9);
    }

    #[test]
    fn junction_field_megavolt_per_cm_scale() {
        let e = junction_field(&nmos(), 0.9);
        // 1-4 MV/cm = 1e8-4e8 V/m is the BTBT-relevant regime.
        assert!(e > 1e8 && e < 5e8, "E = {e:.3e} V/m");
    }
}
