//! Process-parameter perturbations for variation studies.
//!
//! The paper's Section 5.3 applies random variation to channel length,
//! oxide thickness, threshold voltage and supply voltage. A
//! [`Perturbation`] carries the per-device deltas; applying it to a
//! [`DeviceDesign`] re-derives *all* dependent electrical parameters
//! (DIBL, swing, tunneling, junction field), which is exactly why
//! subthreshold leakage reacts so much more violently to variation than
//! the other components.

use serde::{Deserialize, Serialize};

use crate::design::DeviceDesign;

/// Additive deltas on the process parameters of a single device.
/// The supply-voltage delta is carried alongside for convenience but is
/// applied at circuit level, not to the device.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Perturbation {
    /// Channel-length delta \[m\].
    pub dl: f64,
    /// Oxide-thickness delta \[m\].
    pub dtox: f64,
    /// Threshold-voltage delta \[V\] (random dopant fluctuation).
    pub dvth: f64,
    /// Supply-voltage delta \[V\] (applied by the circuit evaluator).
    pub dvdd: f64,
}

impl Perturbation {
    /// The zero perturbation.
    pub const NONE: Self = Self { dl: 0.0, dtox: 0.0, dvth: 0.0, dvdd: 0.0 };

    /// Applies the geometry/threshold deltas to a design, returning the
    /// perturbed design. Lengths are clamped to stay physical (at least
    /// 40% of nominal), mirroring the truncation SPICE Monte-Carlo decks
    /// apply to Gaussian samples.
    #[must_use]
    pub fn apply(&self, design: &DeviceDesign) -> DeviceDesign {
        let mut d = *design;
        d.geometry.l = (d.geometry.l + self.dl).max(0.4 * design.geometry.l);
        d.geometry.tox = (d.geometry.tox + self.dtox).max(0.4 * design.geometry.tox);
        d.flavor.vth_shift += self.dvth;
        d
    }

    /// Component-wise sum of two perturbations (inter-die + intra-die).
    #[must_use]
    pub fn combined(&self, other: &Self) -> Self {
        Self {
            dl: self.dl + other.dl,
            dtox: self.dtox + other.dtox,
            dvth: self.dvth + other.dvth,
            dvdd: self.dvdd + other.dvdd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::NM;
    use crate::{DeviceDesign, MosKind};

    #[test]
    fn shorter_channel_leaks_exponentially_more() {
        let base = DeviceDesign::nano25(MosKind::Nmos);
        let short = Perturbation { dl: -2.0 * NM, ..Default::default() }.apply(&base);
        let (pb, ps) = (base.derive(), short.derive());
        assert!(ps.eta > pb.eta, "shorter channel, more DIBL");
        assert!(ps.vth0 < pb.vth0, "shorter channel, more roll-off");
    }

    #[test]
    fn vth_delta_is_additive() {
        let base = DeviceDesign::nano25(MosKind::Nmos);
        let shifted = Perturbation { dvth: 0.03, ..Default::default() }.apply(&base);
        assert!((shifted.derive().vth0 - base.derive().vth0 - 0.03).abs() < 1e-12);
    }

    #[test]
    fn clamps_prevent_nonphysical_geometry() {
        let base = DeviceDesign::nano25(MosKind::Nmos);
        let crazy = Perturbation { dl: -100.0 * NM, dtox: -100.0 * NM, ..Default::default() };
        let d = crazy.apply(&base);
        assert!(d.geometry.l > 0.0 && d.geometry.tox > 0.0);
    }

    #[test]
    fn combination_adds_componentwise() {
        let a = Perturbation { dl: 1e-9, dtox: 2e-11, dvth: 0.01, dvdd: -0.02 };
        let b = Perturbation { dl: -5e-10, dtox: 1e-11, dvth: 0.02, dvdd: 0.01 };
        let c = a.combined(&b);
        assert!((c.dl - 5e-10).abs() < 1e-24);
        assert!((c.dtox - 3e-11).abs() < 1e-24);
        assert!((c.dvth - 0.03).abs() < 1e-15);
        assert!((c.dvdd + 0.01).abs() < 1e-15);
    }

    #[test]
    fn none_is_identity() {
        let base = DeviceDesign::nano25(MosKind::Nmos);
        assert_eq!(Perturbation::NONE.apply(&base), base);
    }
}
