//! Transistor geometry description.

use serde::{Deserialize, Serialize};

use crate::consts::NM;

/// Physical geometry of a MOSFET.
///
/// All lengths are in meters. Construct with [`Geometry::new`] and adjust
/// with the builder-style `with_*` methods:
///
/// ```
/// use nanoleak_device::Geometry;
/// let g = Geometry::nano25().with_width(400e-9);
/// assert_eq!(g.w, 400e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geometry {
    /// Gate (channel) length \[m\].
    pub l: f64,
    /// Channel width \[m\].
    pub w: f64,
    /// Gate oxide (equivalent) thickness \[m\].
    pub tox: f64,
    /// Source/drain junction depth \[m\]; enters the short-channel
    /// natural length.
    pub xj: f64,
    /// Gate-to-S/D overlap length \[m\]; sets the edge-tunneling area.
    pub lov: f64,
}

impl Geometry {
    /// Creates a geometry from gate length, width and oxide thickness,
    /// with junction depth and overlap scaled from the gate length
    /// (`xj = l`, `lov = 0.16 l`), which is representative of the
    /// super-halo devices in the paper's 25–50 nm range.
    ///
    /// # Panics
    /// Panics if any dimension is not strictly positive.
    pub fn new(l: f64, w: f64, tox: f64) -> Self {
        assert!(l > 0.0 && w > 0.0 && tox > 0.0, "dimensions must be positive");
        Self { l, w, tox, xj: l, lov: 0.16 * l }
    }

    /// The paper's 25 nm experimental device: L = 25 nm, W = 200 nm,
    /// Tox = 1.0 nm.
    pub fn nano25() -> Self {
        Self::new(25.0 * NM, 200.0 * NM, 1.0 * NM)
    }

    /// The paper's 50 nm device (Section 2.1): L = 50 nm, W = 200 nm,
    /// Tox = 1.2 nm.
    pub fn nano50() -> Self {
        Self::new(50.0 * NM, 200.0 * NM, 1.2 * NM)
    }

    /// Returns a copy with a different channel width.
    #[must_use]
    pub fn with_width(mut self, w: f64) -> Self {
        assert!(w > 0.0, "width must be positive");
        self.w = w;
        self
    }

    /// Returns a copy with a different gate length.
    #[must_use]
    pub fn with_length(mut self, l: f64) -> Self {
        assert!(l > 0.0, "length must be positive");
        self.l = l;
        self
    }

    /// Returns a copy with a different oxide thickness.
    #[must_use]
    pub fn with_tox(mut self, tox: f64) -> Self {
        assert!(tox > 0.0, "oxide thickness must be positive");
        self.tox = tox;
        self
    }

    /// Returns a copy with a different overlap length.
    #[must_use]
    pub fn with_overlap(mut self, lov: f64) -> Self {
        assert!(lov > 0.0, "overlap must be positive");
        self.lov = lov;
        self
    }

    /// Gate area `W * L` \[m^2\] — the gate-to-channel tunneling area.
    #[inline]
    pub fn gate_area(&self) -> f64 {
        self.w * self.l
    }

    /// Overlap area `W * Lov` \[m^2\] per edge — the edge-tunneling area.
    #[inline]
    pub fn overlap_area(&self) -> f64 {
        self.w * self.lov
    }

    /// Aspect ratio `W / L`.
    #[inline]
    pub fn aspect(&self) -> f64 {
        self.w / self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nano25_dimensions() {
        let g = Geometry::nano25();
        assert_eq!(g.l, 25.0 * NM);
        assert_eq!(g.w, 200.0 * NM);
        assert_eq!(g.tox, 1.0 * NM);
        assert!((g.aspect() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn areas_are_consistent() {
        let g = Geometry::nano25();
        assert!((g.gate_area() / (25e-9 * 200e-9) - 1.0).abs() < 1e-12);
        assert!(g.overlap_area() < g.gate_area());
    }

    #[test]
    fn builders_update_fields() {
        let g = Geometry::nano25().with_length(30.0 * NM).with_tox(1.4 * NM).with_overlap(5.0 * NM);
        assert_eq!(g.l, 30.0 * NM);
        assert_eq!(g.tox, 1.4 * NM);
        assert_eq!(g.lov, 5.0 * NM);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_length_rejected() {
        let _ = Geometry::new(0.0, 1e-7, 1e-9);
    }
}
