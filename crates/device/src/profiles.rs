//! Named technology profiles: matched NMOS/PMOS design pairs plus the
//! supply voltage, as used throughout the paper's experiments.

use serde::{Deserialize, Serialize};

use crate::design::{DeviceDesign, FlavorScales};
use crate::MosKind;

/// A matched NMOS/PMOS pair with its nominal supply — everything the
/// cell library needs to instantiate gates.
///
/// ```
/// use nanoleak_device::Technology;
/// let t = Technology::d25();
/// assert_eq!(t.vdd, 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Profile name (e.g. `"D25"`, `"D25-G"`).
    pub name: String,
    /// N-channel device design (unit width).
    pub nmos: DeviceDesign,
    /// P-channel device design (unit width, drawn 2x the NMOS).
    pub pmos: DeviceDesign,
    /// Nominal supply voltage \[V\].
    pub vdd: f64,
}

impl Technology {
    /// The 25 nm device used for the loading-effect studies
    /// (Sections 4–6). Subthreshold-dominated at room temperature;
    /// identical to `D25-S` of Fig. 8.
    pub fn d25() -> Self {
        Self {
            name: "D25".to_string(),
            nmos: DeviceDesign::nano25(MosKind::Nmos),
            pmos: DeviceDesign::nano25(MosKind::Pmos),
            vdd: 0.9,
        }
    }

    /// The 50 nm device of Section 2.1 (Fig. 4): longer channel, so
    /// subthreshold is suppressed and gate/junction tunneling dominate
    /// at room temperature.
    pub fn d50() -> Self {
        Self {
            name: "D50".to_string(),
            nmos: DeviceDesign::nano50(MosKind::Nmos),
            pmos: DeviceDesign::nano50(MosKind::Pmos),
            vdd: 1.0,
        }
    }

    /// `D25-S` of Fig. 8: subthreshold-dominated (alias of [`Self::d25`]
    /// with the flavor name).
    pub fn d25_s() -> Self {
        let mut t = Self::d25();
        t.name = "D25-S".to_string();
        t
    }

    /// `D25-G` of Fig. 8: gate-tunneling-dominated, total leakage kept
    /// close to `D25-S` by trading subthreshold (higher Vth) for oxide
    /// transmission.
    pub fn d25_g() -> Self {
        let flavor = FlavorScales { gate_mult: 1.7, btbt_mult: 1.0, vth_shift: 0.055 };
        Self {
            name: "D25-G".to_string(),
            nmos: DeviceDesign::nano25(MosKind::Nmos).with_flavor(flavor),
            pmos: DeviceDesign::nano25(MosKind::Pmos).with_flavor(flavor),
            vdd: 0.9,
        }
    }

    /// `D25-JN` of Fig. 8: junction-BTBT-dominated (stronger halo
    /// field via the BTBT multiplier; subthreshold and gate trimmed).
    pub fn d25_jn() -> Self {
        let flavor = FlavorScales { gate_mult: 0.35, btbt_mult: 80.0, vth_shift: 0.055 };
        Self {
            name: "D25-JN".to_string(),
            nmos: DeviceDesign::nano25(MosKind::Nmos).with_flavor(flavor),
            pmos: DeviceDesign::nano25(MosKind::Pmos).with_flavor(flavor),
            vdd: 0.9,
        }
    }

    /// The three dominance-balanced 25 nm flavors of Fig. 8, in the
    /// paper's order (S, G, JN).
    pub fn d25_flavors() -> [Self; 3] {
        [Self::d25_s(), Self::d25_g(), Self::d25_jn()]
    }

    /// Design for the given polarity.
    pub fn design(&self, kind: MosKind) -> &DeviceDesign {
        match kind {
            MosKind::Nmos => &self.nmos,
            MosKind::Pmos => &self.pmos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::Bias;
    use crate::transistor::Transistor;
    use crate::LeakageBreakdown;

    /// Leakage of an unloaded inverter built from the pair, averaged
    /// over both input states — used to check the flavor balancing.
    fn inverter_avg_leakage(t: &Technology) -> LeakageBreakdown {
        let n = Transistor::from_design(&t.nmos);
        let p = Transistor::from_design(&t.pmos);
        let vdd = t.vdd;
        // Input 0 / output 1.
        let (_, bn0) = n.leakage(Bias::new(0.0, vdd, 0.0, 0.0), 300.0);
        let (_, bp0) = p.leakage(Bias::new(0.0, vdd, vdd, vdd), 300.0);
        // Input 1 / output 0.
        let (_, bn1) = n.leakage(Bias::new(vdd, 0.0, 0.0, 0.0), 300.0);
        let (_, bp1) = p.leakage(Bias::new(vdd, 0.0, vdd, vdd), 300.0);
        (bn0 + bp0 + bn1 + bp1).scaled(0.5)
    }

    #[test]
    fn d25_is_subthreshold_dominated() {
        let b = inverter_avg_leakage(&Technology::d25());
        assert!(b.sub > b.gate && b.sub > b.btbt, "{b:?}");
    }

    #[test]
    fn d25_g_is_gate_dominated() {
        let b = inverter_avg_leakage(&Technology::d25_g());
        assert!(b.gate > b.sub && b.gate > b.btbt, "{b:?}");
    }

    #[test]
    fn d25_jn_is_junction_dominated() {
        let b = inverter_avg_leakage(&Technology::d25_jn());
        assert!(b.btbt > b.sub && b.btbt > b.gate, "{b:?}");
    }

    #[test]
    fn flavors_have_comparable_totals() {
        // Paper Section 5.1: "total leakage is same in the three
        // devices" — we require agreement within +/-35%.
        let totals: Vec<f64> =
            Technology::d25_flavors().iter().map(|t| inverter_avg_leakage(t).total()).collect();
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        for (t, total) in Technology::d25_flavors().iter().zip(&totals) {
            let rel = (total - mean).abs() / mean;
            assert!(rel < 0.35, "{}: total {} nA vs mean {} nA", t.name, total / 1e-9, mean / 1e-9);
        }
    }

    #[test]
    fn d50_subthreshold_suppressed_at_room_temperature() {
        // Section 3: at 300 K the 50 nm device is gate/junction
        // dominated; subthreshold must not dominate.
        let b = inverter_avg_leakage(&Technology::d50());
        assert!(b.sub < b.gate + b.btbt, "{b:?}");
    }

    #[test]
    fn design_accessor_matches_kind() {
        let t = Technology::d25();
        assert_eq!(t.design(MosKind::Nmos).kind, MosKind::Nmos);
        assert_eq!(t.design(MosKind::Pmos).kind, MosKind::Pmos);
    }
}
