//! Electrical device parameters consumed by the current models.

use serde::{Deserialize, Serialize};

use crate::consts::{thermal_voltage, T_REF};
use crate::MosKind;

/// Electrical parameters of one MOSFET, as derived from a
/// [`crate::DeviceDesign`] by [`crate::DeviceDesign::derive`].
///
/// All models in this crate treat these parameters as describing an
/// *n-like* core device; p-channel behavior is obtained by the polarity
/// transform in [`crate::Transistor`]. Voltages below are therefore
/// n-like (positive `vth0`, positive `vds` in normal operation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Device polarity (used by [`crate::Transistor`] for the transform).
    pub kind: MosKind,
    /// Channel width \[m\].
    pub w: f64,
    /// Channel length \[m\].
    pub l: f64,
    /// Gate-S/D overlap length \[m\].
    pub lov: f64,
    /// Oxide thickness \[m\].
    pub tox: f64,
    /// Oxide capacitance per area \[F/m^2\].
    pub cox: f64,
    /// Zero-bias threshold voltage at `T_REF` \[V\] (roll-off included).
    pub vth0: f64,
    /// Subthreshold swing factor `m = 1 + (Cdm + Cit)/Cox`.
    pub m: f64,
    /// Body-effect factor \[V^0.5\].
    pub gamma: f64,
    /// Surface potential `2 phi_F` \[V\].
    pub phi_s: f64,
    /// DIBL coefficient \[V/V\].
    pub eta: f64,
    /// Vth temperature coefficient \[V/K\].
    pub kappa_t: f64,
    /// Low-field mobility at `T_REF` \[m^2/Vs\].
    pub mu0: f64,
    /// Mobility temperature exponent.
    pub mu_exp: f64,
    /// Mobility degradation (incl. S/D series resistance) \[1/V\].
    pub theta: f64,
    /// Gate tunneling prefactor \[A/V^2\].
    pub a_gate: f64,
    /// Gate tunneling exponent slope \[1/m\].
    pub b_gate: f64,
    /// Tunneling barrier \[eV\].
    pub phi_b_ev: f64,
    /// Gate-to-bulk share of area tunneling.
    pub igb_frac: f64,
    /// BTBT prefactor.
    pub c_btbt: f64,
    /// BTBT exponent slope \[V/m per eV^1.5\].
    pub b_btbt: f64,
    /// Junction built-in potential \[V\].
    pub psi_bi: f64,
    /// Halo doping at the junction \[m^-3\] (sets the junction field).
    pub n_halo: f64,
    /// Junction thermal saturation current per width \[A/m\].
    pub i_s_w: f64,
}

impl MosParams {
    /// Effective threshold voltage at the given n-like bias and
    /// temperature \[V\]:
    ///
    /// `Vth = Vth0 + gamma (sqrt(phi_s + Vsb) - sqrt(phi_s)) - eta Vds - kappa_t (T - 300)`
    ///
    /// `Vsb` is clamped at mild forward body bias and the square-root
    /// argument kept positive so the expression stays smooth for the
    /// Newton solver.
    #[inline]
    pub fn vth_eff(&self, vds: f64, vsb: f64, t: f64) -> f64 {
        let vsb_c = vsb.max(-0.2);
        let root = (self.phi_s + vsb_c).max(0.02).sqrt();
        self.vth0 + self.gamma * (root - self.phi_s.sqrt())
            - self.eta * vds
            - self.kappa_t * (t - T_REF)
    }

    /// Temperature-scaled mobility \[m^2/Vs\].
    #[inline]
    pub fn mobility(&self, t: f64) -> f64 {
        self.mu0 * (t / T_REF).powf(-self.mu_exp)
    }

    /// Smooth overdrive voltage `u = 2 m vt ln(1 + exp((vgs-vth)/(2 m vt)))`,
    /// which tends to `vgs - vth` in strong inversion and to an
    /// exponential in weak inversion. Shared by the drain-current and
    /// gate-tunneling (inversion-factor) models.
    #[inline]
    pub fn smooth_overdrive(&self, vgs: f64, vth: f64, t: f64) -> f64 {
        let mvt2 = 2.0 * self.m * thermal_voltage(t);
        mvt2 * ln_1p_exp((vgs - vth) / mvt2)
    }
}

/// Overflow-safe `ln(1 + exp(x))` (softplus).
#[inline]
pub fn ln_1p_exp(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Smooth logistic `1 / (1 + exp(-x))`, overflow-safe.
#[inline]
pub fn logistic(x: f64) -> f64 {
    if x > 30.0 {
        1.0
    } else if x < -30.0 {
        x.exp()
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceDesign, MosKind};

    fn nparams() -> MosParams {
        DeviceDesign::nano25(MosKind::Nmos).derive()
    }

    #[test]
    fn vth_drops_with_drain_bias_dibl() {
        let p = nparams();
        let v0 = p.vth_eff(0.0, 0.0, 300.0);
        let v9 = p.vth_eff(0.9, 0.0, 300.0);
        assert!(v9 < v0);
        assert!((v0 - v9 - p.eta * 0.9).abs() < 1e-12);
    }

    #[test]
    fn vth_rises_with_body_reverse_bias() {
        let p = nparams();
        assert!(p.vth_eff(0.0, 0.3, 300.0) > p.vth_eff(0.0, 0.0, 300.0));
    }

    #[test]
    fn vth_drops_with_temperature() {
        let p = nparams();
        assert!(p.vth_eff(0.0, 0.0, 400.0) < p.vth_eff(0.0, 0.0, 300.0));
    }

    #[test]
    fn mobility_degrades_with_temperature() {
        let p = nparams();
        assert!(p.mobility(400.0) < p.mobility(300.0));
        assert!((p.mobility(300.0) - p.mu0).abs() < 1e-15);
    }

    #[test]
    fn ln_1p_exp_limits() {
        assert!((ln_1p_exp(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((ln_1p_exp(50.0) - 50.0).abs() < 1e-12);
        assert!(ln_1p_exp(-50.0) > 0.0);
        assert!(ln_1p_exp(-50.0) < 1e-20);
    }

    #[test]
    fn logistic_limits() {
        assert!((logistic(0.0) - 0.5).abs() < 1e-12);
        assert!(logistic(40.0) == 1.0);
        assert!(logistic(-40.0) < 1e-15);
    }

    #[test]
    fn smooth_overdrive_asymptotes() {
        let p = nparams();
        // Strong inversion: u ~ vgs - vth.
        let u = p.smooth_overdrive(0.9, 0.2, 300.0);
        assert!((u - 0.7).abs() < 0.01);
        // Weak inversion: u small and positive.
        let uw = p.smooth_overdrive(0.0, 0.2, 300.0);
        assert!(uw > 0.0 && uw < 0.02);
    }
}
