//! Subthreshold (weak inversion) drain current model.
//!
//! A single smooth expression covers weak inversion through the linear
//! region, so the same model both produces the OFF-state leakage *and*
//! holds circuit nodes at the rails through ON devices — the ON-device
//! output conductance is what converts a loading current into the node
//! voltage shift at the heart of the paper's loading effect.
//!
//! With the smooth overdrive `u` from [`MosParams::smooth_overdrive`]:
//!
//! ```text
//! mu_eff = mu(T) / (1 + theta u)
//! Isat   = mu_eff Cox (W/L) u^2 / (2 m)
//! Ids    = Isat (1 - exp(-vds / (vt + u/2)))
//! ```
//!
//! * Weak inversion (`vgs << vth`):
//!   `Ids ∝ exp((vgs - vth)/(m vt)) (1 - exp(-vds/vt))` — the textbook
//!   subthreshold current with swing factor `m`, DIBL through
//!   `vth(vds)`, and the stacking-effect `vds` roll-off.
//! * Strong inversion, small `vds`: conductance
//!   `g ≈ mu_eff Cox (W/L) u / m` — a realistic kΩ-scale ON resistance.

use crate::consts::thermal_voltage;
use crate::params::MosParams;

/// Drain-to-source channel current of the n-like core model \[A\].
///
/// Arguments are n-like terminal differences; `vds` must be
/// non-negative (the symmetric source/drain swap is handled by
/// [`crate::Transistor`]).
///
/// # Panics
/// Debug-panics if `vds` is negative.
pub fn ids(p: &MosParams, vgs: f64, vds: f64, vsb: f64, t: f64) -> f64 {
    debug_assert!(vds >= 0.0, "ids requires vds >= 0, got {vds}");
    let vt = thermal_voltage(t);
    let vth = p.vth_eff(vds, vsb, t);
    let u = p.smooth_overdrive(vgs, vth, t);
    let mu_eff = p.mobility(t) / (1.0 + p.theta * u);
    let isat = mu_eff * p.cox * (p.w / p.l) * u * u / (2.0 * p.m);
    -isat * (-vds / (vt + 0.5 * u)).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::NA;
    use crate::{DeviceDesign, MosKind};

    fn nmos() -> MosParams {
        DeviceDesign::nano25(MosKind::Nmos).derive()
    }

    fn pmos() -> MosParams {
        DeviceDesign::nano25(MosKind::Pmos).derive()
    }

    #[test]
    fn off_current_in_calibrated_range() {
        // OFF NMOS at full drain bias: the paper-scale hundreds of nA.
        let i = ids(&nmos(), 0.0, 0.9, 0.0, 300.0);
        assert!(i > 150.0 * NA && i < 600.0 * NA, "Ioff = {} nA", i / NA);
    }

    #[test]
    fn pmos_off_current_same_order() {
        let i = ids(&pmos(), 0.0, 0.9, 0.0, 300.0);
        assert!(i > 150.0 * NA && i < 900.0 * NA, "Ioff,p = {} nA", i / NA);
    }

    #[test]
    fn on_conductance_is_kilo_ohm_scale() {
        // Linear-region conductance of the ON device near vds = 0.
        let p = nmos();
        let dv = 1e-4;
        let g = (ids(&p, 0.9, dv, 0.0, 300.0) - ids(&p, 0.9, 0.0, 0.0, 300.0)) / dv;
        let r = 1.0 / g;
        assert!(r > 300.0 && r < 4000.0, "Ron = {r} ohm");
    }

    #[test]
    fn exponential_gate_voltage_dependence_in_weak_inversion() {
        // One swing (m*vt*ln10 ~ 100 mV) of vgs should move the current
        // ~10x while the device stays in deep weak inversion.
        let p = nmos();
        let vt = crate::consts::thermal_voltage(300.0);
        let swing = p.m * vt * std::f64::consts::LN_10;
        let i0 = ids(&p, -swing, 0.9, 0.0, 300.0);
        let i1 = ids(&p, 0.0, 0.9, 0.0, 300.0);
        let ratio = i1 / i0;
        assert!(ratio > 7.0 && ratio < 13.0, "decade ratio = {ratio}");
    }

    #[test]
    fn dibl_increases_off_current_with_drain_bias() {
        let p = nmos();
        let lo = ids(&p, 0.0, 0.45, 0.0, 300.0);
        let hi = ids(&p, 0.0, 0.90, 0.0, 300.0);
        // exp(eta * 0.45 / (m vt)) ~ 2.5-4x for eta ~ 0.1.
        assert!(hi / lo > 2.0 && hi / lo < 8.0, "DIBL ratio = {}", hi / lo);
    }

    #[test]
    fn off_current_grows_steeply_with_temperature() {
        let p = nmos();
        let i300 = ids(&p, 0.0, 0.9, 0.0, 300.0);
        let i400 = ids(&p, 0.0, 0.9, 0.0, 400.0);
        assert!(i400 / i300 > 4.0, "T ratio = {}", i400 / i300);
    }

    #[test]
    fn stack_source_bias_suppresses_current() {
        // Raising the source (stacking effect): vgs negative, vsb
        // positive, vds reduced => strong suppression.
        let p = nmos();
        let flat = ids(&p, 0.0, 0.9, 0.0, 300.0);
        let stacked = ids(&p, -0.08, 0.82, 0.08, 300.0);
        assert!(stacked < 0.25 * flat, "stack factor = {}", flat / stacked);
    }

    #[test]
    fn current_vanishes_at_zero_vds() {
        assert_eq!(ids(&nmos(), 0.0, 0.0, 0.0, 300.0), 0.0);
    }

    #[test]
    fn current_monotonic_in_vgs() {
        let p = nmos();
        let mut last = 0.0;
        for k in 0..=20 {
            let vgs = -0.2 + 0.06 * k as f64;
            let i = ids(&p, vgs, 0.9, 0.0, 300.0);
            assert!(i > last, "non-monotonic at vgs={vgs}");
            last = i;
        }
    }

    #[test]
    fn width_scales_current_linearly() {
        let mut p = nmos();
        let i1 = ids(&p, 0.0, 0.9, 0.0, 300.0);
        p.w *= 3.0;
        let i3 = ids(&p, 0.0, 0.9, 0.0, 300.0);
        assert!((i3 / i1 - 3.0).abs() < 1e-9);
    }
}
