//! `nanoleak-cli` — estimate the leakage of an ISCAS89 `.bench` file
//! (or a built-in benchmark) with and without the loading effect.
//!
//! ```text
//! nanoleak-cli <circuit.bench | s838 | s1196 | ... | alu88 | mult88>
//!              [--vectors N] [--seed S] [--reference] [--temp K]
//! ```

use std::process::ExitCode;

use nanoleak::prelude::*;
use nanoleak_netlist::generate::{alu, iscas_like, multiplier};
use rand::SeedableRng;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nanoleak-cli <circuit.bench | s838 | s1196 | s1423 | s5378 | s9234 | s13207 | \
         alu88 | mult88> [--vectors N] [--seed S] [--reference] [--temp K]"
    );
    ExitCode::FAILURE
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(target) = args.first().filter(|a| !a.starts_with("--")).cloned() else {
        return usage();
    };
    let vectors: usize =
        arg_value(&args, "--vectors").and_then(|v| v.parse().ok()).unwrap_or(100);
    let seed: u64 = arg_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(2005);
    let temp: f64 = arg_value(&args, "--temp").and_then(|v| v.parse().ok()).unwrap_or(300.0);
    let with_reference = args.iter().any(|a| a == "--reference");

    // Resolve the circuit: a .bench path or a built-in generator name.
    let raw = if target.ends_with(".bench") {
        let text = match std::fs::read_to_string(&target) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read '{target}': {e}");
                return ExitCode::FAILURE;
            }
        };
        let name = target.trim_end_matches(".bench").to_string();
        match parse_bench(&name, &text) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("error: {target}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match target.as_str() {
            "alu88" => alu(8),
            "mult88" => multiplier(8),
            other => match iscas_like(other) {
                Some(raw) => raw,
                None => return usage(),
            },
        }
    };

    let circuit = match normalize(&raw) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: normalization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", CircuitStats::compute(&circuit));

    let tech = Technology::d25();
    println!("characterizing cell library for {} at {temp} K ...", tech.name);
    let lib = CellLibrary::shared(&tech, temp);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let patterns = Pattern::random_batch(&circuit, &mut rng, vectors);

    let loaded = match estimate_batch(&circuit, &lib, &patterns, EstimatorMode::Lut) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: estimation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let unloaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::NoLoading)
        .expect("baseline estimation cannot fail after loaded pass");

    let mean =
        |rs: &[CircuitLeakage]| rs.iter().map(|r| r.total.total()).sum::<f64>() / rs.len() as f64;
    let pairs: Vec<_> = loaded.iter().cloned().zip(unloaded.iter().cloned()).collect();
    let impact = LoadingImpact::from_pairs(&pairs);

    println!("\nleakage over {vectors} random vectors (mean):");
    println!("  without loading : {:10.3} uA", mean(&unloaded) * 1e6);
    println!("  with loading    : {:10.3} uA", mean(&loaded) * 1e6);
    println!("  leakage power   : {:10.3} uW (with loading)", mean(&loaded) * tech.vdd * 1e6);
    println!("\nloading impact (avg over vectors):");
    println!("  subthreshold    : {:+7.2} %", impact.avg.sub * 100.0);
    println!("  gate tunneling  : {:+7.2} %", impact.avg.gate * 100.0);
    println!("  junction BTBT   : {:+7.2} %", impact.avg.btbt * 100.0);
    println!("  total           : {:+7.2} %", impact.avg_total * 100.0);
    println!("loading impact (max over vectors): {:+7.2} %", impact.max_total * 100.0);

    if with_reference {
        let n = patterns.len().min(5);
        println!("\nrunning full reference solve on {n} vectors (slow) ...");
        match nanoleak_core::reference_batch(
            &circuit,
            &tech,
            temp,
            &patterns[..n],
            &ReferenceOptions::default(),
        ) {
            Ok(refs) => {
                let accs: Vec<_> =
                    loaded[..n].iter().zip(&refs).map(|(e, r)| accuracy(e, &r.leakage)).collect();
                let mean_err =
                    accs.iter().map(|a| a.total_rel_err.abs()).sum::<f64>() / accs.len() as f64;
                println!(
                    "  reference mean  : {:10.3} uA",
                    refs.iter().map(|r| r.leakage.total.total()).sum::<f64>() / n as f64 * 1e6
                );
                println!("  estimator error : {:7.2} % (mean |total|)", mean_err * 100.0);
            }
            Err(e) => eprintln!("  reference failed: {e}"),
        }
    }
    ExitCode::SUCCESS
}
