//! `nanoleak-cli` — leakage analysis of ISCAS89 `.bench` files (or
//! built-in benchmarks) with the loading-aware estimator.
//!
//! ```text
//! nanoleak-cli estimate <target> [--vectors N] [--seed S] [--temp K] [--vdd-scale X]
//!                                [--reference] [--format text|json] [--coarse]
//!                                [--no-cache] [--cache-dir DIR]
//! nanoleak-cli sweep    <target> [--vectors N] [--seed S] [--temp K] [--vdd-scale X]
//!                                [--threads N] [--lanes 1|64] [--mode lut|noloading|direct]
//!                                [--shard-vectors N] [--format text|json] [--coarse]
//!                                [--no-cache] [--cache-dir DIR]
//! nanoleak-cli mlv      <target> [--goal min|max] [--strategy exhaustive|random|hillclimb]
//!                                [--samples N] [--restarts N] [--max-steps N]
//!                                [--seed S] [--temp K] [--vdd-scale X] [--threads N]
//!                                [--lanes 1|64] [--format text|json] [--coarse]
//!                                [--no-cache] [--cache-dir DIR]
//! nanoleak-cli optimize <target> [--rounds N] [--goal min|max]
//!                                [--strategy exhaustive|random|hillclimb]
//!                                [--samples N] [--restarts N] [--max-steps N]
//!                                [--no-canonicalize] [--no-permute] [--no-remap]
//!                                [--out FILE] [--seed S] [--temp K] [--vdd-scale X]
//!                                [--threads N] [--format text|json] [--coarse]
//!                                [--no-cache] [--cache-dir DIR]
//! nanoleak-cli mc       <target> [--samples N] [--sigma-vt V] [--sigma-vt-intra V]
//!                                [--vectors N] [--seed S] [--temp K] [--vdd-scale X]
//!                                [--threads N] [--lanes 1|64] [--shard-samples N]
//!                                [--format text|json] [--coarse]
//! nanoleak-cli serve    [--addr HOST:PORT] [--threads N] [--queue N]
//!                       [--keep-alive N] [--job-cap N]
//!                       [--no-cache] [--cache-dir DIR]
//! ```
//!
//! `<target>` is a `.bench` path, a Yosys gate-level JSON dump
//! (`.json`, see [`nanoleak_netlist::yosys`]), or a built-in name
//! (`s838`, `s1196`, ..., `alu88`, `mult88`); `--circuit-format
//! auto|bench|yosys` overrides the extension-based detection.
//! Invoking with a target as the first argument (no subcommand)
//! behaves like `estimate`, preserving the original CLI. Unknown
//! `--flags` are rejected with an error instead of being silently
//! ignored.
//!
//! Every subcommand analyzes at a first-class operating point
//! (`--temp` × `--vdd-scale`, see `nanoleak_cells::OperatingPoint`),
//! the same condition derivation the server's grid and MC jobs use.
//!
//! The characterized cell library is cached on disk between runs
//! (`.nanoleak-cache/` or `$NANOLEAK_CACHE_DIR`); pass `--no-cache`
//! to force re-characterization. `mc` is the exception: its per-sample
//! libraries belong to unique perturbed dies, so they are memoized in
//! RAM only — a disk cache would fill with one-shot entries.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use nanoleak::prelude::*;
use nanoleak_cells::OperatingPoint;
use nanoleak_engine::{
    mc_streaming_mode, mlv_search, shard_count, sweep_streaming, CacheOutcome, LibraryCache,
    McMode, MemoLibraryCache, MlvConfig, MlvGoal, MlvStrategy, ScalarStats, SweepConfig,
};
use nanoleak_netlist::generate::{alu, iscas_like, multiplier};
use nanoleak_netlist::{parse_yosys_json, RawCircuit};
use nanoleak_opt::{optimize_with, OptimizeConfig};
use nanoleak_serve::api::{
    circuit_to_value, fmt_pattern, round_to_value, EstimateResponse, McResponse, MlvResponse,
    OptimizeResponse, SweepResponse,
};
use nanoleak_serve::{ServeConfig, Server};
use nanoleak_variation::{char_opts_for, CircuitMcConfig, Stats, VariationSigmas};
use rand::SeedableRng;

const USAGE: &str = "\
usage: nanoleak-cli <command> <circuit.bench | design.json | s838 | s1196 | s1423 | s5378 | s9234 | s13207 | alu88 | mult88> [options]

commands:
  estimate   mean leakage and loading impact over random vectors (default)
  sweep      parallel per-vector statistics over the input space
  mlv        minimum/maximum-leakage input-vector search
  optimize   leakage-aware netlist rewriting (pin permutations and NAND/NOR
             remapping, scored at the extreme vector)
  mc         circuit-level Monte-Carlo leakage distribution under process
             variation (loaded vs unloaded)
  serve      long-lived HTTP/JSON analysis service (no circuit argument)

common options:
  --vectors N     random vectors (estimate/sweep; patterns per MC sample for
                  mc; default 100, mc default 1)
  --seed S        RNG seed (default 2005)
  --temp K        temperature in kelvin (default 300)
  --vdd-scale X   supply-scale factor on the nominal Vdd (default 1.0)
  --threads N     worker threads for sweep/mlv/mc/serve (default: all cores)
  --lanes N       patterns per evaluation word for sweep/mlv/mc: 64 packs
                  patterns 64-wide through the block kernel, 1 forces the
                  scalar reference path, 0 picks automatically (default 0;
                  results are bit-identical either way)
  --format F      output format for estimate/sweep/mlv/mc: text (default)
                  or json
  --coarse        characterize on the coarse 4-point test grid (fast,
                  lower LUT resolution)
  --no-cache      re-characterize instead of using the on-disk cache
  --cache-dir D   cache directory (default .nanoleak-cache or $NANOLEAK_CACHE_DIR)
  --circuit-format F  auto (default) | bench | yosys; auto picks by
                  extension (.bench, .json = Yosys gate-level JSON dump)
                  and falls back to the built-in generator names

estimate options:
  --reference     also run the full transistor-level reference solve

sweep options:
  --shard-vectors N   stream the sweep in shards of N vectors (progress per
                      shard on stderr; merged stats are bit-identical to a
                      monolithic run; default 0 = one shard)

mlv options:
  --goal min|max                       search direction (default min)
  --strategy exhaustive|random|hillclimb   (default hillclimb)
  --samples N     random-strategy samples (default 1024)
  --restarts N    hill-climb restarts (default 8)
  --max-steps N   hill-climb accepted-move limit (default 64)

optimize options (plus all mlv options, which steer the scoring vector):
  --rounds N          optimization-round bound (default 4; each round is a
                      pin-permutation pass, a remap pass, and a vector
                      re-search — the loop stops early on convergence)
  --no-canonicalize   skip the double-inverter / dead-gate pre-pass
  --no-permute        skip the commutative pin-permutation pass
  --no-remap          skip the NAND(!x,!y) <-> INV(NOR(x,y)) remap pass
  --out FILE          also write the optimized netlist as structured JSON

mc options:
  --samples N         Monte-Carlo samples / perturbed dies (default 200)
  --sigma-vt V        inter-die threshold-voltage sigma in volts, the
                      paper's Fig. 11 sweep variable (default 0.030)
  --sigma-vt-intra V  intra-die threshold sigma in volts (default 0.030)
  --shard-samples N   stream the run in shards of N samples (progress per
                      shard on stderr; merged summary is bit-identical to
                      a monolithic run; default 0 = one shard)
  --exact             characterize every die from scratch (bit-exact
                      reference path). Default off: dies derive from the
                      nominal library's recorded sensitivities — 10-100x
                      faster, with the measured max/mean deviation from
                      the exact path reported alongside the summary
  (mc ignores the disk cache: per-sample libraries are RAM-memoized only)

serve options:
  --addr A        bind address (default 127.0.0.1:8425)
  --queue N       bound on queued jobs (default 64)
  --keep-alive N  max requests per keep-alive connection (0 = one request
                  per connection; default 1000)
  --job-cap N     finished jobs retained before oldest-first eviction
                  (default 512)
  --default-job-timeout-ms N  deadline applied to jobs whose request
                  carries no timeout_ms field (default: none); expired
                  jobs fail with error deadline_exceeded at the next
                  shard boundary, keeping completed shards
  --faults SPEC   arm fault-injection failpoints for chaos drills,
                  e.g. cache-io=error:disk gone*2;slow-shard=sleep:500
                  ($NANOLEAK_FAULTS applies when the flag is absent)
  --log-level L   off|error|warn|info|debug|trace — JSON-lines log
                  verbosity on stderr (default info; NANOLEAK_LOG
                  applies when the flag is absent)";

/// Strict argument list: every flag must be consumed by the active
/// subcommand or parsing fails.
struct Args {
    items: Vec<String>,
    used: Vec<bool>,
}

impl Args {
    fn new(items: Vec<String>) -> Self {
        let used = vec![false; items.len()];
        Self { items, used }
    }

    /// Consumes a boolean `--flag`; `true` if present.
    fn take_flag(&mut self, name: &str) -> bool {
        let mut found = false;
        for i in 0..self.items.len() {
            if !self.used[i] && self.items[i] == name {
                self.used[i] = true;
                found = true;
            }
        }
        found
    }

    /// Consumes `--name value`; errors if the value is missing.
    fn take_value(&mut self, name: &str) -> Result<Option<String>, String> {
        for i in 0..self.items.len() {
            if !self.used[i] && self.items[i] == name {
                self.used[i] = true;
                let Some(value) = self.items.get(i + 1) else {
                    return Err(format!("{name} expects a value"));
                };
                if self.used[i + 1] || value.starts_with("--") {
                    return Err(format!("{name} expects a value, got '{value}'"));
                }
                self.used[i + 1] = true;
                return Ok(Some(value.clone()));
            }
        }
        Ok(None)
    }

    /// Consumes `--name value` parsed as `T`, with a default.
    fn take_parsed<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, String> {
        match self.take_value(name)? {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("{name}: cannot parse '{raw}'")),
        }
    }

    /// Consumes the leading positional argument. Only the *first*
    /// item qualifies: a later non-flag token is some flag's value,
    /// and binding it as a positional would mis-parse
    /// `sweep --vectors 10 s1196` (the target must come first).
    fn take_positional(&mut self) -> Option<String> {
        if !self.items.is_empty() && !self.used[0] && !self.items[0].starts_with("--") {
            self.used[0] = true;
            return Some(self.items[0].clone());
        }
        None
    }

    /// Fails if anything was left unconsumed (unknown flags or stray
    /// positionals).
    fn finish(self) -> Result<(), String> {
        let leftover: Vec<&str> = self
            .items
            .iter()
            .zip(&self.used)
            .filter(|(_, &used)| !used)
            .map(|(item, _)| item.as_str())
            .collect();
        if leftover.is_empty() {
            Ok(())
        } else {
            Err(format!("unknown argument(s): {}", leftover.join(" ")))
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    // Subcommand dispatch with backwards compatibility: a first
    // argument that is not a known command is an `estimate` target.
    let command = match raw[0].as_str() {
        "estimate" | "sweep" | "mlv" | "optimize" | "mc" | "serve" => raw.remove(0),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => "estimate".to_string(),
    };

    let mut args = Args::new(raw);
    // `serve` is the one command without a circuit argument.
    if command == "serve" {
        return match cmd_serve(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => fail(&msg),
        };
    }
    let Some(target) = args.take_positional() else {
        return fail("missing circuit target (the target must come before options)");
    };

    let result = match command.as_str() {
        "estimate" => cmd_estimate(&target, args),
        "sweep" => cmd_sweep(&target, args),
        "mlv" => cmd_mlv(&target, args),
        "optimize" => cmd_optimize(&target, args),
        "mc" => cmd_mc(&target, args),
        _ => unreachable!("dispatch covers all commands"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => fail(&msg),
    }
}

/// On-disk netlist dialect of the circuit target: `--circuit-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CircuitFormat {
    /// By extension: `.bench` → bench, `.json` → yosys, otherwise a
    /// built-in generator name.
    Auto,
    Bench,
    Yosys,
}

impl CircuitFormat {
    fn take(args: &mut Args) -> Result<Self, String> {
        match args.take_value("--circuit-format")?.as_deref() {
            None | Some("auto") => Ok(CircuitFormat::Auto),
            Some("bench") => Ok(CircuitFormat::Bench),
            Some("yosys") => Ok(CircuitFormat::Yosys),
            Some(other) => {
                Err(format!("--circuit-format: expected auto|bench|yosys, got '{other}'"))
            }
        }
    }
}

/// Resolves a `.bench` path, Yosys JSON dump, or built-in generator
/// name to a circuit.
fn load_circuit(target: &str, format: CircuitFormat) -> Result<Circuit, String> {
    let read = || -> Result<String, String> {
        std::fs::read_to_string(target).map_err(|e| format!("cannot read '{target}': {e}"))
    };
    let bench = |text: &str| -> Result<RawCircuit, String> {
        let name = target.trim_end_matches(".bench").to_string();
        parse_bench(&name, text).map_err(|e| format!("{target}: {e}"))
    };
    // The empty name lets the importer keep the JSON module's name.
    let yosys = |text: &str| parse_yosys_json("", text).map_err(|e| format!("{target}: {e}"));
    let raw = match format {
        CircuitFormat::Bench => bench(&read()?)?,
        CircuitFormat::Yosys => yosys(&read()?)?,
        CircuitFormat::Auto if target.ends_with(".bench") => bench(&read()?)?,
        CircuitFormat::Auto if target.ends_with(".json") => yosys(&read()?)?,
        CircuitFormat::Auto => match target {
            "alu88" => alu(8),
            "mult88" => multiplier(8),
            other => iscas_like(other).ok_or_else(|| format!("unknown circuit '{other}'"))?,
        },
    };
    normalize(&raw).map_err(|e| format!("normalization failed: {e}"))
}

/// Cache-related options shared by all subcommands.
struct CacheOpts {
    enabled: bool,
    dir: Option<String>,
}

impl CacheOpts {
    fn take(args: &mut Args) -> Result<Self, String> {
        let enabled = !args.take_flag("--no-cache");
        let dir = args.take_value("--cache-dir")?;
        Ok(Self { enabled, dir })
    }
}

/// Output format of the analysis subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

impl OutputFormat {
    fn take(args: &mut Args) -> Result<Self, String> {
        match args.take_value("--format")?.as_deref() {
            None | Some("text") => Ok(OutputFormat::Text),
            Some("json") => Ok(OutputFormat::Json),
            Some(other) => Err(format!("--format: expected text|json, got '{other}'")),
        }
    }
}

/// The operating conditions of a run: `--temp` (kelvin) and
/// `--vdd-scale`, bundled as the shared [`OperatingPoint`] the whole
/// stack characterizes through.
fn take_operating_point(args: &mut Args) -> Result<OperatingPoint, String> {
    let op = OperatingPoint {
        temp: args.take_parsed("--temp", 300.0)?,
        vdd_scale: args.take_parsed("--vdd-scale", 1.0)?,
    };
    op.validate()?;
    Ok(op)
}

/// `--coarse` selects the fast 4-point test grid (what the service's
/// `"coarse": true` does); the default is the production 11-point
/// resolution.
fn take_char_opts(args: &mut Args) -> CharacterizeOptions {
    if args.take_flag("--coarse") {
        CharacterizeOptions::coarse(&CellType::ALL)
    } else {
        CharacterizeOptions::default()
    }
}

/// Obtains the characterized library at an operating point, through
/// the persistent cache unless disabled. With `quiet`, progress goes
/// to stderr so stdout stays machine-parseable (`--format json`).
fn load_library(
    tech: &Technology,
    op: &OperatingPoint,
    opts: &CharacterizeOptions,
    cache: &CacheOpts,
    quiet: bool,
) -> Arc<CellLibrary> {
    macro_rules! info {
        ($($arg:tt)*) => {
            if quiet { eprintln!($($arg)*) } else { println!($($arg)*) }
        };
    }
    let temp = op.temp;
    if !cache.enabled {
        info!("characterizing cell library for {} at {temp} K (cache disabled) ...", tech.name);
        return op.shared_library(tech, opts);
    }
    let store = match &cache.dir {
        Some(dir) => LibraryCache::new(dir),
        None => LibraryCache::default_location(),
    };
    let t0 = Instant::now();
    match store.load_or_characterize(&op.tech(tech), temp, opts) {
        Ok((lib, outcome)) => {
            let elapsed = t0.elapsed();
            match outcome {
                CacheOutcome::Hit => info!(
                    "[cache] hit: loaded {} @ {temp} K from {} in {:.1} ms",
                    tech.name,
                    store.dir().display(),
                    elapsed.as_secs_f64() * 1e3
                ),
                CacheOutcome::Miss => info!(
                    "[cache] miss: characterized {} @ {temp} K in {:.2} s (stored in {})",
                    tech.name,
                    elapsed.as_secs_f64(),
                    store.dir().display()
                ),
                CacheOutcome::Invalidated => info!(
                    "[cache] stale entry replaced: re-characterized {} @ {temp} K in {:.2} s",
                    tech.name,
                    elapsed.as_secs_f64()
                ),
                // LibraryCache is the disk layer; RAM hits only come
                // from the MemoLibraryCache used by `serve`.
                CacheOutcome::MemoryHit => unreachable!("disk cache cannot hit RAM"),
            }
            lib
        }
        Err(e) => {
            eprintln!("warning: {e}; continuing without the disk cache");
            op.shared_library(tech, opts)
        }
    }
}

fn parse_mode(raw: Option<String>) -> Result<EstimatorMode, String> {
    match raw.as_deref() {
        None | Some("lut") => Ok(EstimatorMode::Lut),
        Some("noloading") => Ok(EstimatorMode::NoLoading),
        Some("direct") => Ok(EstimatorMode::DirectSolve),
        Some(other) => Err(format!("--mode: expected lut|noloading|direct, got '{other}'")),
    }
}

fn cmd_estimate(target: &str, mut args: Args) -> Result<(), String> {
    let vectors: usize = args.take_parsed("--vectors", 100)?;
    let seed: u64 = args.take_parsed("--seed", 2005)?;
    let op = take_operating_point(&mut args)?;
    let with_reference = args.take_flag("--reference");
    let format = OutputFormat::take(&mut args)?;
    let char_opts = take_char_opts(&mut args);
    let cache = CacheOpts::take(&mut args)?;
    let circuit_format = CircuitFormat::take(&mut args)?;
    args.finish()?;
    if with_reference && format == OutputFormat::Json {
        // Refusing beats silently dropping the reference solve from
        // the JSON report.
        return Err("--reference is not supported with --format json".to_string());
    }

    let t0 = Instant::now();
    let circuit = load_circuit(target, circuit_format)?;
    if format == OutputFormat::Text {
        println!("{}", CircuitStats::compute(&circuit));
    }
    let tech = Technology::d25();
    let lib = load_library(&tech, &op, &char_opts, &cache, format == OutputFormat::Json);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let patterns = Pattern::random_batch(&circuit, &mut rng, vectors);

    let loaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::Lut)
        .map_err(|e| format!("estimation failed: {e}"))?;
    let unloaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::NoLoading)
        .expect("baseline estimation cannot fail after loaded pass");

    let mean =
        |rs: &[CircuitLeakage]| rs.iter().map(|r| r.total.total()).sum::<f64>() / rs.len() as f64;
    let pairs: Vec<_> = loaded.iter().cloned().zip(unloaded.iter().cloned()).collect();
    let impact = LoadingImpact::from_pairs(&pairs);

    if format == OutputFormat::Json {
        // The service's POST /v1/estimate response type, so one
        // parser covers both transports by construction.
        let report = EstimateResponse {
            target: target.to_string(),
            gates: circuit.gate_count(),
            input_bits: circuit.inputs().len() + circuit.state_inputs().len(),
            vectors,
            seed,
            temp: op.temp,
            mean_total_a: mean(&loaded),
            mean_no_loading_a: mean(&unloaded),
            mean_power_w: mean(&loaded) * lib.tech.vdd,
            loading_impact_avg: impact.avg_total,
            loading_impact_max: impact.max_total,
            elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        };
        println!("{}", serde::json::to_string_pretty(&report));
        return Ok(());
    }

    println!("\nleakage over {vectors} random vectors (mean):");
    println!("  without loading : {:10.3} uA", mean(&unloaded) * 1e6);
    println!("  with loading    : {:10.3} uA", mean(&loaded) * 1e6);
    println!("  leakage power   : {:10.3} uW (with loading)", mean(&loaded) * lib.tech.vdd * 1e6);
    println!("\nloading impact (avg over vectors):");
    println!("  subthreshold    : {:+7.2} %", impact.avg.sub * 100.0);
    println!("  gate tunneling  : {:+7.2} %", impact.avg.gate * 100.0);
    println!("  junction BTBT   : {:+7.2} %", impact.avg.btbt * 100.0);
    println!("  total           : {:+7.2} %", impact.avg_total * 100.0);
    println!("loading impact (max over vectors): {:+7.2} %", impact.max_total * 100.0);

    if with_reference {
        let n = patterns.len().min(5);
        println!("\nrunning full reference solve on {n} vectors (slow) ...");
        match nanoleak_core::reference_batch(
            &circuit,
            &lib.tech,
            op.temp,
            &patterns[..n],
            &ReferenceOptions::default(),
        ) {
            Ok(refs) => {
                let accs: Vec<_> =
                    loaded[..n].iter().zip(&refs).map(|(e, r)| accuracy(e, &r.leakage)).collect();
                let mean_err =
                    accs.iter().map(|a| a.total_rel_err.abs()).sum::<f64>() / accs.len() as f64;
                println!(
                    "  reference mean  : {:10.3} uA",
                    refs.iter().map(|r| r.leakage.total.total()).sum::<f64>() / n as f64 * 1e6
                );
                println!("  estimator error : {:7.2} % (mean |total|)", mean_err * 100.0);
            }
            Err(e) => eprintln!("  reference failed: {e}"),
        }
    }
    Ok(())
}

/// The `--lanes` flag shared by sweep/mlv/mc: `0` (auto → the
/// 64-wide block kernel), `64` (block explicitly), or `1` (the scalar
/// reference path). A throughput knob only — results are
/// bit-identical either way.
fn take_lanes(args: &mut Args) -> Result<usize, String> {
    let lanes: usize = args.take_parsed("--lanes", 0)?;
    if !matches!(lanes, 0 | 1 | 64) {
        return Err(format!("--lanes: expected 0 (auto), 1 (scalar), or 64 (block), got {lanes}"));
    }
    Ok(lanes)
}

fn cmd_sweep(target: &str, mut args: Args) -> Result<(), String> {
    let config = SweepConfig {
        vectors: args.take_parsed("--vectors", 100)?,
        seed: args.take_parsed("--seed", 2005)?,
        threads: args.take_parsed("--threads", 0)?,
        mode: parse_mode(args.take_value("--mode")?)?,
        lanes: take_lanes(&mut args)?,
    };
    let op = take_operating_point(&mut args)?;
    let shard_vectors: usize = args.take_parsed("--shard-vectors", 0)?;
    let format = OutputFormat::take(&mut args)?;
    let char_opts = take_char_opts(&mut args);
    let cache = CacheOpts::take(&mut args)?;
    let circuit_format = CircuitFormat::take(&mut args)?;
    args.finish()?;
    if config.vectors == 0 {
        return Err("--vectors must be at least 1".to_string());
    }

    let circuit = load_circuit(target, circuit_format)?;
    if format == OutputFormat::Text {
        println!("{}", CircuitStats::compute(&circuit));
    }
    let tech = Technology::d25();
    let lib = load_library(&tech, &op, &char_opts, &cache, format == OutputFormat::Json);

    // Progress streams to stderr so `--format json` stdout stays
    // machine-parseable; merged stats are bit-identical to a
    // monolithic sweep for any shard size.
    let shards = shard_count(config.vectors, shard_vectors);
    let report = sweep_streaming(&circuit, &lib, &config, shard_vectors, |shard| {
        if shards > 1 {
            eprintln!(
                "[sweep] shard {}/{shards}: {} vectors done (mean {:.4} uA)",
                shard.shard + 1,
                shard.start + shard.vectors,
                shard.stats.total.mean * 1e6
            );
        }
        true
    })
    .map_err(|e| format!("sweep failed: {e}"))?
    .expect("CLI sweeps are never cancelled");
    let s = &report.stats;
    let t = &report.telemetry;

    if format == OutputFormat::Json {
        // The service's POST /v1/sweep response type (see estimate).
        let report_json = SweepResponse {
            target: target.to_string(),
            gates: circuit.gate_count(),
            temp: op.temp,
            config,
            shards,
            min_vector: fmt_pattern(&s.min.pattern),
            max_vector: fmt_pattern(&s.max.pattern),
            stats: s.clone(),
            elapsed_ms: t.elapsed.as_secs_f64() * 1e3,
            patterns_per_sec: t.patterns_per_sec,
        };
        println!("{}", serde::json::to_string_pretty(&report_json));
        return Ok(());
    }

    let ua = 1e6;
    let row = |name: &str, st: &ScalarStats| {
        println!(
            "  {name:<6} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            st.mean * ua,
            st.std * ua,
            st.min * ua,
            st.p50 * ua,
            st.p90 * ua,
            st.p99 * ua,
            st.max * ua,
        );
    };
    println!("\nper-vector leakage statistics over {} vectors [uA]:", s.vectors);
    println!(
        "  {:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "", "mean", "std", "min", "p50", "p90", "p99", "max"
    );
    row("total", &s.total);
    row("sub", &s.sub);
    row("gate", &s.gate);
    row("btbt", &s.btbt);
    println!(
        "\n  min vector : #{:<6} {} ({:.4} uA)",
        s.min.index,
        fmt_pattern(&s.min.pattern),
        s.min.leakage.total() * ua
    );
    println!(
        "  max vector : #{:<6} {} ({:.4} uA)",
        s.max.index,
        fmt_pattern(&s.max.pattern),
        s.max.leakage.total() * ua
    );
    println!(
        "\n  {} vectors on {} thread(s) in {:.3} s — {:.0} patterns/sec",
        s.vectors,
        t.threads,
        t.elapsed.as_secs_f64(),
        t.patterns_per_sec
    );
    Ok(())
}

/// The MLV-search flags shared by `mlv` and `optimize` (goal,
/// strategy, seed, threads), mirroring the service's resolver.
fn take_mlv_config(args: &mut Args) -> Result<MlvConfig, String> {
    let goal = match args.take_value("--goal")?.as_deref() {
        None | Some("min") => MlvGoal::Min,
        Some("max") => MlvGoal::Max,
        Some(other) => return Err(format!("--goal: expected min|max, got '{other}'")),
    };
    let samples: usize = args.take_parsed("--samples", 1024)?;
    let restarts: usize = args.take_parsed("--restarts", 8)?;
    let max_steps: usize = args.take_parsed("--max-steps", 64)?;
    if samples == 0 {
        return Err("--samples must be at least 1".to_string());
    }
    if restarts == 0 {
        return Err("--restarts must be at least 1".to_string());
    }
    let strategy = match args.take_value("--strategy")?.as_deref() {
        None | Some("hillclimb") => MlvStrategy::HillClimb { restarts, max_steps },
        Some("exhaustive") => MlvStrategy::Exhaustive,
        Some("random") => MlvStrategy::Random { samples },
        Some(other) => {
            return Err(format!("--strategy: expected exhaustive|random|hillclimb, got '{other}'"))
        }
    };
    Ok(MlvConfig {
        goal,
        strategy,
        seed: args.take_parsed("--seed", 2005)?,
        threads: args.take_parsed("--threads", 0)?,
        mode: EstimatorMode::Lut,
        lanes: take_lanes(args)?,
    })
}

fn goal_name(goal: MlvGoal) -> &'static str {
    match goal {
        MlvGoal::Min => "min",
        MlvGoal::Max => "max",
    }
}

fn cmd_mlv(target: &str, mut args: Args) -> Result<(), String> {
    let config = take_mlv_config(&mut args)?;
    let goal = config.goal;
    let op = take_operating_point(&mut args)?;
    let format = OutputFormat::take(&mut args)?;
    let char_opts = take_char_opts(&mut args);
    let cache = CacheOpts::take(&mut args)?;
    let circuit_format = CircuitFormat::take(&mut args)?;
    args.finish()?;

    let circuit = load_circuit(target, circuit_format)?;
    if format == OutputFormat::Text {
        println!("{}", CircuitStats::compute(&circuit));
    }
    let tech = Technology::d25();
    let lib = load_library(&tech, &op, &char_opts, &cache, format == OutputFormat::Json);

    let result =
        mlv_search(&circuit, &lib, &config).map_err(|e| format!("MLV search failed: {e}"))?;
    let tel = &result.telemetry;

    if format == OutputFormat::Json {
        // The service's POST /v1/mlv response type, so one parser
        // covers both transports by construction (floats print
        // shortest-round-trip, decoding bit-exactly).
        let goal_name = match goal {
            MlvGoal::Min => "min",
            MlvGoal::Max => "max",
        };
        let report = MlvResponse {
            target: target.to_string(),
            goal: goal_name.to_string(),
            strategy: tel.strategy.to_string(),
            vector: fmt_pattern(&result.pattern),
            pattern: result.pattern.clone(),
            objective_a: result.objective,
            sub_a: result.leakage.total.sub,
            gate_a: result.leakage.total.gate,
            btbt_a: result.leakage.total.btbt,
            evaluations: tel.evaluations,
            improving_moves: tel.improving_moves,
            restarts: tel.restarts,
            // Search-only wall clock, matching the service's
            // `POST /v1/mlv` semantics for the same field.
            elapsed_ms: tel.elapsed.as_secs_f64() * 1e3,
        };
        println!("{}", serde::json::to_string_pretty(&report));
        return Ok(());
    }

    let which = match goal {
        MlvGoal::Min => "minimum",
        MlvGoal::Max => "maximum",
    };
    println!("\n{which}-leakage vector ({} strategy):", tel.strategy);
    println!("  vector   : {}", fmt_pattern(&result.pattern));
    println!("  leakage  : {:.4} uA total", result.objective * 1e6);
    println!(
        "  breakdown: sub {:.4} / gate {:.4} / btbt {:.4} uA",
        result.leakage.total.sub * 1e6,
        result.leakage.total.gate * 1e6,
        result.leakage.total.btbt * 1e6
    );
    println!(
        "  power    : {:.4} uW at {:.2} V",
        result.objective * lib.tech.vdd * 1e6,
        lib.tech.vdd
    );
    println!(
        "\n  {} evaluations, {} improving moves, {} restart(s) in {:.3} s",
        tel.evaluations,
        tel.improving_moves,
        tel.restarts,
        tel.elapsed.as_secs_f64()
    );
    Ok(())
}

fn cmd_optimize(target: &str, mut args: Args) -> Result<(), String> {
    let mlv = take_mlv_config(&mut args)?;
    let rounds: usize = args.take_parsed("--rounds", 4)?;
    if rounds == 0 {
        return Err("--rounds must be at least 1".to_string());
    }
    let config = OptimizeConfig {
        mlv,
        max_rounds: rounds,
        canonicalize: !args.take_flag("--no-canonicalize"),
        permute: !args.take_flag("--no-permute"),
        remap: !args.take_flag("--no-remap"),
    };
    let out_path = args.take_value("--out")?;
    let op = take_operating_point(&mut args)?;
    let format = OutputFormat::take(&mut args)?;
    let char_opts = take_char_opts(&mut args);
    let cache = CacheOpts::take(&mut args)?;
    let circuit_format = CircuitFormat::take(&mut args)?;
    args.finish()?;

    let t0 = Instant::now();
    let circuit = load_circuit(target, circuit_format)?;
    if format == OutputFormat::Text {
        println!("{}", CircuitStats::compute(&circuit));
    }
    let tech = Technology::d25();
    let lib = load_library(&tech, &op, &char_opts, &cache, format == OutputFormat::Json);

    // Round progress goes to stderr so `--format json` stdout stays
    // machine-parseable.
    let result = optimize_with(&circuit, &lib, &config, |round| {
        eprintln!(
            "[optimize] round {}/{}: objective {:.4} uA ({} permutation(s), {} remap(s))",
            round.round,
            round.rounds_total,
            round.objective_a * 1e6,
            round.accepted_permutations,
            round.accepted_remaps
        );
        true
    })
    .map_err(|e| format!("optimization failed: {e}"))?
    .expect("CLI optimizations are never cancelled");

    if let Some(path) = &out_path {
        let netlist = serde::json::value_to_string(&circuit_to_value(&result.circuit));
        std::fs::write(path, netlist).map_err(|e| format!("cannot write '{path}': {e}"))?;
        eprintln!("[optimize] wrote optimized netlist to {path}");
    }

    if format == OutputFormat::Json {
        // The service's POST /v1/optimize response type, so one
        // parser covers both transports by construction.
        let (pairs, dead) = result
            .canonical
            .as_ref()
            .map_or((0, 0), |r| (r.inverter_pairs_removed, r.dead_gates_removed));
        let response = OptimizeResponse {
            target: target.to_string(),
            goal: goal_name(config.mlv.goal).to_string(),
            strategy: result.baseline.telemetry.strategy.to_string(),
            gates_before: result.gates_before,
            gates_after: result.gates_after,
            rounds_run: result.rounds.len(),
            max_rounds: rounds,
            baseline_vector: fmt_pattern(&result.baseline.pattern),
            baseline_a: result.baseline.objective,
            improved_vector: fmt_pattern(&result.improved.pattern),
            improved_a: result.improved.objective,
            improved_power_w: result.improved.objective * lib.tech.vdd,
            improvement_percent: result.improvement_percent(),
            accepted_permutations: result.rounds.iter().map(|r| r.accepted_permutations).sum(),
            accepted_remaps: result.rounds.iter().map(|r| r.accepted_remaps).sum(),
            canonicalized: result.canonical.is_some(),
            inverter_pairs_removed: pairs,
            dead_gates_removed: dead,
            reverted: result.reverted,
            evaluations: result.evaluations,
            rounds: result.rounds.iter().map(round_to_value).collect(),
            netlist: circuit_to_value(&result.circuit),
            elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        };
        println!("{}", serde::json::to_string_pretty(&response));
        return Ok(());
    }

    let ua = 1e6;
    let which = match config.mlv.goal {
        MlvGoal::Min => "minimum",
        MlvGoal::Max => "maximum",
    };
    println!("\nleakage optimization at the {which}-leakage vector:");
    if let Some(report) = &result.canonical {
        println!(
            "  canonical : {} -> {} gates ({} inverter pair(s), {} dead gate(s) removed)",
            report.gates_before,
            report.gates_after,
            report.inverter_pairs_removed,
            report.dead_gates_removed
        );
    }
    println!(
        "  baseline  : {:.4} uA at {}",
        result.baseline.objective * ua,
        fmt_pattern(&result.baseline.pattern)
    );
    println!(
        "  improved  : {:.4} uA at {} ({:+.2} %)",
        result.improved.objective * ua,
        fmt_pattern(&result.improved.pattern),
        -result.improvement_percent()
    );
    println!(
        "  rewrites  : {} pin permutation(s), {} NAND/NOR remap(s) over {} round(s)",
        result.rounds.iter().map(|r| r.accepted_permutations).sum::<usize>(),
        result.rounds.iter().map(|r| r.accepted_remaps).sum::<usize>(),
        result.rounds.len()
    );
    println!("  gates     : {} -> {}", result.gates_before, result.gates_after);
    if result.reverted {
        println!("  (no rewrite survived the objective guard; input returned unchanged)");
    }
    println!(
        "\n  {} estimator evaluations in {:.3} s",
        result.evaluations,
        result.elapsed.as_secs_f64()
    );
    Ok(())
}

fn cmd_mc(target: &str, mut args: Args) -> Result<(), String> {
    let samples: usize = args.take_parsed("--samples", 200)?;
    let vectors: usize = args.take_parsed("--vectors", 1)?;
    let seed: u64 = args.take_parsed("--seed", 2005)?;
    let sigma_vt: f64 = args.take_parsed("--sigma-vt", 30e-3)?;
    let sigma_vt_intra: f64 = args.take_parsed("--sigma-vt-intra", 30e-3)?;
    let threads: usize = args.take_parsed("--threads", 0)?;
    let lanes = take_lanes(&mut args)?;
    let shard_samples: usize = args.take_parsed("--shard-samples", 0)?;
    let op = take_operating_point(&mut args)?;
    let format = OutputFormat::take(&mut args)?;
    let coarse = args.take_flag("--coarse");
    let exact = args.take_flag("--exact");
    // Accepted for flag-set compatibility with the other subcommands,
    // but deliberately unused: per-sample libraries belong to unique
    // perturbed dies, so `mc` never reads or writes the disk cache.
    let _ = CacheOpts::take(&mut args)?;
    let circuit_format = CircuitFormat::take(&mut args)?;
    args.finish()?;
    if samples == 0 || vectors == 0 {
        return Err("--samples and --vectors must be at least 1".to_string());
    }

    let circuit = load_circuit(target, circuit_format)?;
    if format == OutputFormat::Text {
        println!("{}", CircuitStats::compute(&circuit));
    }
    let tech = Technology::d25();
    let sigmas =
        VariationSigmas::paper_nominal().with_vt_inter(sigma_vt).with_vt_intra(sigma_vt_intra);
    sigmas.validate()?;
    let config = CircuitMcConfig {
        samples,
        seed,
        sigmas,
        op,
        vectors,
        pattern_seed: seed,
        threads,
        char_opts: char_opts_for(&circuit, coarse),
        lanes,
    };
    // Per-sample libraries belong to unique perturbed dies: memoize in
    // RAM (re-runs of one seed hit), never on disk (one-shot litter).
    let cache = MemoLibraryCache::memory_only();
    let shards = shard_count(samples, shard_samples);
    let mode = McMode::from_exact(exact);
    let report =
        mc_streaming_mode(&circuit, &tech, &cache, &config, mode, shard_samples, |shard| {
            if shards > 1 {
                eprintln!(
                    "[mc] shard {}/{shards}: {} samples done (loaded mean {:.4} uA)",
                    shard.shard + 1,
                    shard.start + shard.samples,
                    shard.summary.loaded.total.mean * 1e6
                );
            }
            true
        })
        .map_err(|e| format!("monte carlo failed: {e}"))?
        .expect("CLI MC runs are never cancelled");
    let summary = report.summary;
    let tel = &report.telemetry;

    if format == OutputFormat::Json {
        // The service's "mc" job response type (see estimate/sweep).
        let response = McResponse {
            target: target.to_string(),
            gates: circuit.gate_count(),
            samples,
            vectors,
            seed,
            pattern_seed: seed,
            temp: op.temp,
            vdd_scale: op.vdd_scale,
            sigmas: config.sigmas,
            shards,
            exact,
            summary,
            elapsed_ms: tel.elapsed.as_secs_f64() * 1e3,
            samples_per_sec: tel.samples_per_sec,
        };
        println!("{}", serde::json::to_string_pretty(&response));
        return Ok(());
    }

    let ua = 1e6;
    println!(
        "\nleakage distribution over {samples} perturbed dies \
         (sigma_vt {:.0} mV inter / {:.0} mV intra, {vectors} vector(s)/sample) [uA]:",
        sigma_vt * 1e3,
        sigma_vt_intra * 1e3
    );
    println!(
        "  {:<6} {:>12} {:>12} {:>12} {:>12}",
        "", "mean(load)", "mean(no)", "std(load)", "std(no)"
    );
    let row = |name: &str, l: &Stats, u: &Stats| {
        println!(
            "  {name:<6} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            l.mean * ua,
            u.mean * ua,
            l.std * ua,
            u.std * ua
        );
    };
    row("total", &summary.loaded.total, &summary.unloaded.total);
    row("sub", &summary.loaded.sub, &summary.unloaded.sub);
    row("gate", &summary.loaded.gate, &summary.unloaded.gate);
    row("btbt", &summary.loaded.btbt, &summary.unloaded.btbt);
    println!(
        "\n  loading shifts the total-leakage mean by {:+.2}% and the spread by {:+.2}%",
        summary.mean_shift * 100.0,
        summary.std_shift * 100.0
    );
    println!(
        "\n  {samples} samples in {:.3} s — {:.1} samples/sec{}",
        tel.elapsed.as_secs_f64(),
        tel.samples_per_sec,
        if exact { " (exact per-die characterization)" } else { "" }
    );
    if let Some(fast) = &summary.fast {
        println!(
            "  fast path: {}/{} dies derived from nominal sensitivities \
             ({} entry fallback(s), max error estimate {:.4})",
            fast.diag.dies_derived,
            fast.diag.dies_derived + fast.diag.dies_full,
            fast.diag.entries_fallback,
            fast.diag.max_error_estimate
        );
        println!(
            "  deviation vs exact over {} probed sample(s): max {:.4}% mean {:.4}% \
             (tolerance {:.2}; use --exact for the bit-exact path)",
            fast.probed,
            fast.max_deviation * 100.0,
            fast.mean_deviation * 100.0,
            fast.tol
        );
    }
    Ok(())
}

fn cmd_serve(mut args: Args) -> Result<(), String> {
    let defaults = ServeConfig::default();
    let addr = args.take_value("--addr")?.unwrap_or_else(|| "127.0.0.1:8425".to_string());
    let threads: usize = args.take_parsed("--threads", 0)?;
    let queue_capacity: usize = args.take_parsed("--queue", 64)?;
    let keep_alive_requests: usize =
        args.take_parsed("--keep-alive", defaults.keep_alive_requests)?;
    let finished_jobs_cap: usize = args.take_parsed("--job-cap", defaults.finished_jobs_cap)?;
    let default_job_timeout_ms: u64 = args.take_parsed("--default-job-timeout-ms", 0)?;
    // `--faults` wins over $NANOLEAK_FAULTS; either arms the global
    // failpoint registry before any worker starts.
    let armed_faults = match args.take_value("--faults")? {
        Some(spec) => nanoleak_fault::arm_from_spec(&spec).map_err(|e| format!("--faults: {e}"))?,
        None => nanoleak_fault::arm_from_env()
            .map_err(|e| format!("{}: {e}", nanoleak_fault::ENV_VAR))?,
    };
    // `--log-level` wins; otherwise NANOLEAK_LOG applies (read lazily
    // by nanoleak-obs); otherwise a long-lived service defaults to
    // info so operators see startup and job lines.
    match args.take_value("--log-level")? {
        Some(raw) => {
            let level = nanoleak_obs::Level::parse(&raw)
                .ok_or_else(|| format!("--log-level: unknown level '{raw}'"))?;
            nanoleak_obs::set_level(level);
        }
        None => {
            if std::env::var_os("NANOLEAK_LOG").is_none() {
                nanoleak_obs::set_level(nanoleak_obs::Level::Info);
            }
        }
    }
    if queue_capacity == 0 {
        return Err("--queue must be at least 1".to_string());
    }
    if finished_jobs_cap == 0 {
        return Err("--job-cap must be at least 1".to_string());
    }
    let cache = CacheOpts::take(&mut args)?;
    args.finish()?;

    let config = ServeConfig {
        addr,
        threads,
        queue_capacity,
        cache_dir: cache.dir.map(std::path::PathBuf::from),
        disk_cache: cache.enabled,
        keep_alive_requests,
        finished_jobs_cap,
        default_job_timeout: (default_job_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(default_job_timeout_ms)),
        ..defaults
    };
    if armed_faults > 0 {
        nanoleak_obs::warn!(
            "serve",
            "fault injection armed: {} failpoint(s) — chaos drill, not a production posture",
            armed_faults
        );
    }
    nanoleak_serve::install_signal_handlers();
    let server = Server::bind(&config).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let stats = server.state().stats();
    // The listening line stays on stdout so scripts can capture the
    // resolved port; everything else is structured stderr logging.
    println!("nanoleak-serve listening on http://{addr}");
    nanoleak_obs::info!(
        "serve",
        "listening on http://{}: {} worker(s), queue capacity {}, disk cache {}, \
         keep-alive {} req/conn, {} finished jobs retained",
        addr,
        stats.workers,
        stats.queue.capacity,
        if config.disk_cache { "on" } else { "off" },
        config.keep_alive_requests,
        config.finished_jobs_cap
    );
    nanoleak_obs::info!(
        "serve",
        "endpoints: /healthz /metrics /v1/stats /v1/estimate /v1/sweep /v1/mlv /v1/optimize \
         /v1/jobs; \
         ctrl-c or SIGTERM drains queued jobs and exits"
    );
    server.run().map_err(|e| format!("server failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::new(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let mut a = args(&["--vectors", "10", "--bogus", "--seed", "1"]);
        let _ = a.take_parsed::<usize>("--vectors", 100).unwrap();
        let _ = a.take_parsed::<u64>("--seed", 2005).unwrap();
        let err = a.finish().unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn stray_positionals_are_rejected() {
        let mut a = args(&["s1196", "extra"]);
        assert_eq!(a.take_positional().as_deref(), Some("s1196"));
        let err = a.finish().unwrap_err();
        assert!(err.contains("extra"));
    }

    #[test]
    fn missing_values_are_rejected() {
        let mut a = args(&["--vectors"]);
        let err = a.take_value("--vectors").unwrap_err();
        assert!(err.contains("expects a value"));
        let mut a = args(&["--vectors", "--seed", "3"]);
        let err = a.take_value("--vectors").unwrap_err();
        assert!(err.contains("expects a value"));
    }

    #[test]
    fn values_and_flags_parse() {
        let mut a = args(&["--threads", "8", "--no-cache", "--temp", "350"]);
        assert_eq!(a.take_parsed::<usize>("--threads", 0).unwrap(), 8);
        assert!(a.take_flag("--no-cache"));
        assert!(!a.take_flag("--reference"));
        assert_eq!(a.take_parsed::<f64>("--temp", 300.0).unwrap(), 350.0);
        a.finish().unwrap();
    }

    #[test]
    fn parse_errors_name_the_flag() {
        let mut a = args(&["--vectors", "many"]);
        let err = a.take_parsed::<usize>("--vectors", 100).unwrap_err();
        assert!(err.contains("--vectors") && err.contains("many"));
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode(None).unwrap(), EstimatorMode::Lut);
        assert_eq!(parse_mode(Some("noloading".into())).unwrap(), EstimatorMode::NoLoading);
        assert!(parse_mode(Some("spice".into())).is_err());
    }

    #[test]
    fn pattern_formatting() {
        let p = Pattern { pi: vec![true, false], states: vec![] };
        assert_eq!(fmt_pattern(&p), "10");
        let p = Pattern { pi: vec![false], states: vec![true] };
        assert_eq!(fmt_pattern(&p), "0|1");
    }
}
