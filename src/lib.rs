//! # nanoleak
//!
//! Loading-effect-aware leakage estimation for nano-scale bulk-CMOS
//! logic circuits — a from-scratch Rust reproduction of
//!
//! > S. Mukhopadhyay, S. Bhunia, K. Roy, *"Modeling and Analysis of
//! > Loading Effect in Leakage of Nano-Scaled Bulk-CMOS Logic
//! > Circuits"*, DATE 2005.
//!
//! In sub-100 nm bulk CMOS the three leakage mechanisms — subthreshold
//! conduction, gate direct tunneling, and junction band-to-band
//! tunneling (BTBT) — interact *between* gates: the tunneling current a
//! gate's fanin/fanout neighbors draw from (or inject into) a net
//! shifts that net's voltage a few millivolts off the rail, which moves
//! every attached gate's leakage by up to ~10%. This crate family
//! models that **loading effect** end to end and implements the paper's
//! fast one-pass estimation algorithm, validated against a full
//! nonlinear circuit solve.
//!
//! This facade re-exports the sub-crates:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`device`] | `nanoleak-device` | compact transistor leakage models |
//! | [`solver`] | `nanoleak-solver` | DC Newton/LU/Brent kernels ("virtual SPICE") |
//! | [`cells`] | `nanoleak-cells` | standard cells + loading characterization |
//! | [`netlist`] | `nanoleak-netlist` | gate-level circuits, `.bench`, generators |
//! | [`core`] | `nanoleak-core` | the Fig. 13 estimator + reference simulator |
//! | [`variation`] | `nanoleak-variation` | Monte-Carlo process variation (inverter fixture + circuit-level) |
//! | [`engine`] | `nanoleak-engine` | parallel sweeps, MLV search, streaming MC, characterization + plan caches |
//! | [`opt`] | `nanoleak-opt` | leakage-aware netlist optimization (pin permutations, NAND/NOR remaps) |
//! | [`serve`] | `nanoleak-serve` | long-lived HTTP/JSON service + async grid/MC/optimize jobs |
//!
//! ## Quickstart
//!
//! ```
//! use nanoleak::prelude::*;
//!
//! // 1. Pick the paper's 25 nm technology and characterize the cells.
//! let tech = Technology::d25();
//! let lib = CellLibrary::shared_with_options(
//!     &tech, 300.0, &CharacterizeOptions::coarse(&[CellType::Inv]));
//!
//! // 2. Build a fanout web: one driver, four loads on its output net.
//! let mut b = CircuitBuilder::new("web");
//! let a = b.add_input("a");
//! let mid = b.add_gate(CellType::Inv, &[a], "mid");
//! for i in 0..4 {
//!     let y = b.add_gate(CellType::Inv, &[mid], &format!("y{i}"));
//!     b.mark_output(y);
//! }
//! let circuit = b.build()?;
//!
//! // 3. Estimate leakage with and without the loading effect.
//! let pattern = Pattern::zeros(&circuit);
//! let loaded = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut)?;
//! let baseline = estimate(&circuit, &lib, &pattern, EstimatorMode::NoLoading)?;
//! assert!(loaded.total.total() != baseline.total.total());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## The analysis engine
//!
//! The [`engine`] crate scales the single-shot estimator into batch
//! workloads. Its three subsystems:
//!
//! * **Pattern sweeps** ([`engine::sweep`](nanoleak_engine::sweep::sweep)) —
//!   evaluate N random input patterns in parallel and merge
//!   mean/std/min/max/percentile statistics per leakage component.
//!   Pattern `i` is always drawn from the SplitMix64-derived stream
//!   `mix(seed, i)`, so sweep statistics are bit-identical for any
//!   `--threads` value. Patterns run 64 to the machine word through
//!   the compiled plan's block kernel
//!   ([`CompiledEstimator::estimate_block_into`](nanoleak_core::CompiledEstimator::estimate_block_into));
//!   `--lanes 1` forces the scalar reference path, with bit-identical
//!   results either way.
//! * **MLV search** ([`engine::mlv_search`](nanoleak_engine::mlv::mlv_search)) —
//!   find the minimum- (or maximum-) leakage input vector for standby
//!   power, by exhaustive enumeration, random sampling, or parallel
//!   hill-climbing with restarts.
//! * **Characterization cache**
//!   ([`engine::LibraryCache`](nanoleak_engine::cache::LibraryCache)) —
//!   persist characterized [`CellLibrary`](nanoleak_cells::CellLibrary)
//!   LUTs to disk (`*.nlc`: magic/version/key/checksum header + the
//!   serialized library), so repeated runs skip the multi-second
//!   characterize step. Keys hash the full (technology, temperature,
//!   options) request; any mismatch re-characterizes.
//!
//! ```
//! use nanoleak::prelude::*;
//!
//! let tech = Technology::d25();
//! let lib = CellLibrary::shared_with_options(
//!     &tech, 300.0, &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]));
//! let mut b = CircuitBuilder::new("pair");
//! let a = b.add_input("a");
//! let c = b.add_input("b");
//! let n = b.add_gate(CellType::Nand2, &[a, c], "n");
//! let y = b.add_gate(CellType::Inv, &[n], "y");
//! b.mark_output(y);
//! let circuit = b.build()?;
//!
//! // Per-vector statistics over the input space, all cores.
//! let report = sweep(&circuit, &lib, &SweepConfig { vectors: 32, ..Default::default() })?;
//! // The standby vector with the least leakage.
//! let best = mlv_search(&circuit, &lib, &MlvConfig::default())?;
//! assert!(best.objective <= report.stats.total.min);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! From the CLI: `nanoleak-cli sweep s1196 --vectors 1000 --threads 8`
//! and `nanoleak-cli mlv s838 --strategy hillclimb`.
//!
//! ## The optimizer
//!
//! The [`opt`] crate closes the loop from *estimating* standby leakage
//! to *reducing* it ([`opt::optimize`](nanoleak_opt::optimize)): a
//! deterministic greedy pass that permutes commutative gate pins and
//! applies De-Morgan NAND↔NOR remaps, scoring every candidate with the
//! compiled estimator at the minimum-leakage vector and re-searching
//! the vector after each round. The result is guaranteed no worse than
//! the input at its own MLV. From the CLI:
//! `nanoleak-cli optimize s838 --rounds 4`.
//!
//! ## The service
//!
//! `nanoleak-cli serve` hosts the engine as a resident HTTP/JSON
//! service ([`serve`]): synchronous `/v1/estimate`, `/v1/sweep`, and
//! `/v1/mlv` endpoints plus an async job queue whose `"grid"` job
//! type sweeps a temperature × Vdd condition matrix through a shared
//! in-RAM characterization cache. `estimate` and `sweep` also take
//! `--format json` for machine-readable one-shot output, using the
//! same field names the service responds with.

pub use nanoleak_cells as cells;
pub use nanoleak_core as core;
pub use nanoleak_device as device;
pub use nanoleak_engine as engine;
pub use nanoleak_netlist as netlist;
pub use nanoleak_opt as opt;
pub use nanoleak_serve as serve;
pub use nanoleak_solver as solver;
pub use nanoleak_variation as variation;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use nanoleak_cells::{
        eval_isolated, eval_loaded, CellLibrary, CellType, CharacterizeOptions, InputVector,
        OperatingPoint,
    };
    pub use nanoleak_core::{
        accuracy, estimate, estimate_batch, reference_leakage, resolve_lanes, BlockScratch,
        CircuitLeakage, CompiledEstimator, EstimateError, EstimateScratch, EstimatorMode,
        LoadingImpact, PatternBlock, ReferenceOptions, LANES,
    };
    pub use nanoleak_device::{
        Bias, DeviceDesign, LeakageBreakdown, MosKind, Perturbation, Technology, Transistor,
    };
    pub use nanoleak_engine::{
        mc_streaming, mlv_search, sweep, CacheOutcome, EngineError, LibraryCache, MemoLibraryCache,
        MlvConfig, MlvGoal, MlvResult, MlvStrategy, ScalarStats, SweepConfig, SweepReport,
    };
    pub use nanoleak_netlist::{
        bench_format::parse_bench, generate, normalize::normalize, parse_yosys_json, Circuit,
        CircuitBuilder, CircuitStats, Pattern,
    };
    pub use nanoleak_opt::{optimize, optimize_with, OptimizeConfig, OptimizeResult};
    pub use nanoleak_solver::{solve_dc, MosNetlist, NewtonOptions, SolverError};
    pub use nanoleak_variation::{
        run_circuit_mc, run_inverter_mc, CircuitMcConfig, McConfig, McSummary, VariationSigmas,
    };
}
