//! Offline vendored mini-rand.
//!
//! The workspace builds without network access, so the real `rand`
//! cannot be fetched. This crate provides the subset the workspace
//! uses with the same import surface:
//!
//! * [`rngs::StdRng`] — a xoshiro256** generator (the *stream* differs
//!   from upstream `rand`'s StdRng, but every consumer in this
//!   workspace only relies on determinism-per-seed, not on a specific
//!   stream);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`].

/// The raw entropy source: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: Vec<u64> = (0..4).map(|_| c.gen()).collect();
        let mut d = StdRng::seed_from_u64(7);
        let other: Vec<u64> = (0..4).map(|_| d.gen()).collect();
        assert_ne!(first, other, "different seeds give different streams");
    }

    #[test]
    fn unit_floats_in_range_and_nondegenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }
}
