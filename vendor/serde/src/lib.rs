//! Offline vendored mini-serde.
//!
//! This workspace builds without network access, so the real `serde`
//! cannot be fetched. This crate provides the subset the workspace
//! needs with the same import surface (`use serde::{Serialize,
//! Deserialize}` plus `#[derive(Serialize, Deserialize)]`), backed by a
//! simple self-describing [`Value`] tree:
//!
//! * [`Serialize`] / [`Deserialize`] convert a type to/from [`Value`];
//! * the derive macros (re-exported from `serde_derive`) generate those
//!   impls for plain structs, tuple structs, and enums with unit or
//!   tuple variants — exactly the shapes this workspace uses;
//! * [`to_bytes`] / [`from_bytes`] are a compact binary codec over
//!   [`Value`] (floats round-trip bit-exactly via `f64::to_bits`),
//!   which is what `nanoleak-engine` uses for its on-disk
//!   characterization cache.

use std::collections::BTreeMap;
use std::fmt;

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit (fieldless enum variant payloads).
    Unit,
    /// Boolean.
    Bool(bool),
    /// Any integer type, widened.
    Int(i128),
    /// 64-bit float (encoded via `to_bits`, so NaN payloads survive).
    F64(f64),
    /// String.
    Str(String),
    /// Sequence: `Vec<T>`, tuples, tuple-struct fields.
    Seq(Vec<Value>),
    /// Ordered map: `BTreeMap<K, V>`.
    Map(Vec<(Value, Value)>),
    /// Named struct: `(field name, value)` in declaration order.
    Record(Vec<(String, Value)>),
    /// Enum variant: name plus payload (`Unit` or `Seq`).
    Variant(String, Box<Value>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, validating the value shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Derive-support helpers (called from generated code).
// ---------------------------------------------------------------------

/// Extracts the field list of a [`Value::Record`].
pub fn value_record<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Record(fields) => Ok(fields),
        other => Err(Error::msg(format!("{ty}: expected record, got {other:?}"))),
    }
}

/// Looks up one named field of a record.
pub fn record_field<'v>(
    fields: &'v [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("{ty}: missing field '{name}'")))
}

/// Extracts a [`Value::Seq`] with an exact arity.
pub fn value_seq<'v>(v: &'v Value, arity: usize, ty: &str) -> Result<&'v [Value], Error> {
    match v {
        Value::Seq(items) if items.len() == arity => Ok(items),
        Value::Seq(items) => {
            Err(Error::msg(format!("{ty}: expected {arity} elements, got {}", items.len())))
        }
        other => Err(Error::msg(format!("{ty}: expected sequence, got {other:?}"))),
    }
}

/// Extracts a [`Value::Variant`] name and payload.
///
/// Also accepts the JSON text encodings of a variant (see
/// [`json`]): a bare string is a unit variant, and a single-field
/// record is a variant with a payload.
pub fn value_variant<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), Error> {
    const UNIT: &Value = &Value::Unit;
    match v {
        Value::Variant(name, payload) => Ok((name, payload)),
        Value::Str(name) => Ok((name, UNIT)),
        Value::Record(fields) if fields.len() == 1 => Ok((&fields[0].0, &fields[0].1)),
        other => Err(Error::msg(format!("{ty}: expected enum variant, got {other:?}"))),
    }
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{} out of range", stringify!($t)))),
                    // Integer-valued floats (e.g. JSON `1e3`) decode
                    // into integer fields when exactly representable.
                    Value::F64(x)
                        if x.is_finite() && x.fract() == 0.0 && x.abs() < 9.007199254740992e15 =>
                    {
                        <$t>::try_from(*x as i128)
                            .map_err(|_| Error::msg(format!("{} out of range", stringify!($t))))
                    }
                    other => Err(Error::msg(format!(
                        "expected {}, got {other:?}", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            // JSON integer literals (`"temp": 300`) land in f64 fields.
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::msg(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Variant("None".into(), Box::new(Value::Unit)),
            Some(x) => Value::Variant("Some".into(), Box::new(Value::Seq(vec![x.to_value()]))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // JSON conventions: null is None, a bare value is Some.
            Value::Unit => Ok(None),
            Value::Variant(name, payload) => match name.as_str() {
                "None" => Ok(None),
                "Some" => {
                    let items = value_seq(payload, 1, "Option")?;
                    Ok(Some(T::from_value(&items[0])?))
                }
                _ => T::from_value(v).map(Some),
            },
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_value(), v.to_value())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?))).collect()
            }
            // The JSON text form of a map is an array of [key, value]
            // pairs (keys need not be strings).
            Value::Seq(items) => items
                .iter()
                .map(|pair| {
                    let kv = value_seq(pair, 2, "map entry")?;
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                })
                .collect(),
            other => Err(Error::msg(format!("expected map, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = value_seq(v, 2, "tuple")?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = value_seq(v, 3, "tuple")?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?, C::from_value(&items[2])?))
    }
}

// Identity impls: a `Value` field in a derived DTO embeds the tree
// verbatim (e.g. a pre-built JSON subtree inside a response struct).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------
// Binary codec.
// ---------------------------------------------------------------------

const TAG_UNIT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_SEQ: u8 = 5;
const TAG_MAP: u8 = 6;
const TAG_RECORD: u8 = 7;
const TAG_VARIANT: u8 = 8;

fn write_len(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u64).to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Unit => out.push(TAG_UNIT),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_str(out, s);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            write_len(out, items.len());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            write_len(out, entries.len());
            for (k, v) in entries {
                encode_value(k, out);
                encode_value(v, out);
            }
        }
        Value::Record(fields) => {
            out.push(TAG_RECORD);
            write_len(out, fields.len());
            for (name, v) in fields {
                write_str(out, name);
                encode_value(v, out);
            }
        }
        Value::Variant(name, payload) => {
            out.push(TAG_VARIANT);
            write_str(out, name);
            encode_value(payload, out);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.pos + n > self.bytes.len() {
            return Err(Error::msg("truncated input"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_len(&mut self) -> Result<usize, Error> {
        let b = self.take(8)?;
        let n = u64::from_le_bytes(b.try_into().expect("8 bytes"));
        // Guard against absurd lengths from corrupt files before any
        // allocation happens.
        if n > (self.bytes.len() as u64).saturating_mul(2) + 1024 {
            return Err(Error::msg("implausible length (corrupt input)"));
        }
        Ok(n as usize)
    }

    fn read_str(&mut self) -> Result<String, Error> {
        let n = self.read_len()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| Error::msg("invalid UTF-8"))
    }

    fn read_value(&mut self) -> Result<Value, Error> {
        let tag = self.take(1)?[0];
        Ok(match tag {
            TAG_UNIT => Value::Unit,
            TAG_BOOL => Value::Bool(self.take(1)?[0] != 0),
            TAG_INT => {
                Value::Int(i128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
            }
            TAG_F64 => Value::F64(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            ))),
            TAG_STR => Value::Str(self.read_str()?),
            TAG_SEQ => {
                let n = self.read_len()?;
                let mut items = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    items.push(self.read_value()?);
                }
                Value::Seq(items)
            }
            TAG_MAP => {
                let n = self.read_len()?;
                let mut entries = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let k = self.read_value()?;
                    let v = self.read_value()?;
                    entries.push((k, v));
                }
                Value::Map(entries)
            }
            TAG_RECORD => {
                let n = self.read_len()?;
                let mut fields = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let name = self.read_str()?;
                    let v = self.read_value()?;
                    fields.push((name, v));
                }
                Value::Record(fields)
            }
            TAG_VARIANT => {
                let name = self.read_str()?;
                let payload = self.read_value()?;
                Value::Variant(name, Box::new(payload))
            }
            other => return Err(Error::msg(format!("unknown tag {other}"))),
        })
    }
}

/// Encodes a value to the compact binary form.
pub fn value_to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(v, &mut out);
    out
}

/// Decodes the compact binary form; rejects trailing bytes.
pub fn value_from_bytes(bytes: &[u8]) -> Result<Value, Error> {
    let mut r = Reader { bytes, pos: 0 };
    let v = r.read_value()?;
    if r.pos != bytes.len() {
        return Err(Error::msg("trailing bytes after value"));
    }
    Ok(v)
}

/// Serializes `value` to the compact binary form.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    value_to_bytes(&value.to_value())
}

/// Deserializes `T` from the compact binary form.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    T::from_value(&value_from_bytes(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [Value::Unit, Value::Bool(true), Value::Int(-7), Value::F64(1.5e-9)] {
            assert_eq!(value_from_bytes(&value_to_bytes(&v)).unwrap(), v);
        }
        let x: u64 = from_bytes(&to_bytes(&42u64)).unwrap();
        assert_eq!(x, 42);
    }

    #[test]
    fn f64_bits_survive() {
        let xs = vec![0.0f64, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, f64::INFINITY];
        let back: Vec<f64> = from_bytes(&to_bytes(&xs)).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn containers_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u32, 2, 3]);
        m.insert("b".to_string(), vec![]);
        let back: BTreeMap<String, Vec<u32>> = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(back, m);
        let opt: Option<f64> = from_bytes(&to_bytes(&Some(2.5f64))).unwrap();
        assert_eq!(opt, Some(2.5));
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        assert!(value_from_bytes(&[TAG_SEQ, 0xff, 0xff, 0xff, 0xff]).is_err());
        assert!(value_from_bytes(&[99]).is_err());
        assert!(value_from_bytes(&[]).is_err());
        let mut good = to_bytes(&vec![1u8, 2, 3]);
        good.push(0);
        assert!(value_from_bytes(&good).is_err(), "trailing byte detected");
    }

    #[test]
    fn type_mismatch_reported() {
        let bytes = to_bytes(&true);
        let r: Result<u64, Error> = from_bytes(&bytes);
        assert!(r.unwrap_err().to_string().contains("expected u64"));
    }
}
