//! JSON text codec over the mini-serde [`Value`] tree.
//!
//! The binary codec (`to_bytes`/`from_bytes`) is what the on-disk
//! caches use; this module is the human-facing twin for the HTTP API
//! and `--format json` CLI output. The mapping:
//!
//! | [`Value`] | JSON |
//! |---|---|
//! | `Unit` | `null` |
//! | `Bool` | `true`/`false` |
//! | `Int` | integer literal |
//! | `F64` | number (always with `.` or exponent; non-finite → `null`) |
//! | `Str` | string |
//! | `Seq` | array |
//! | `Map` | array of `[key, value]` pairs |
//! | `Record` | object, declaration order |
//! | `Variant(name, Unit)` | `"name"` |
//! | `Variant(name, payload)` | `{"name": payload}` |
//!
//! Two `Option` conventions make APIs read like ordinary JSON:
//! `None` encodes as `null` and `Some(x)` encodes as `x` directly
//! (so a type with `Option` fields never leaks `{"Some": [..]}` into
//! its wire format). Symmetrically, typed decoding accepts `null` as
//! `None` and any decodable value as `Some`.
//!
//! Decoding is forgiving in the directions a JSON client needs —
//! integer literals decode into `f64` fields, `"min"` decodes into a
//! unit enum variant — but strict about syntax: trailing input,
//! unescaped control characters, and over-deep nesting are errors,
//! never panics.

use crate::{Deserialize, Error, Serialize, Value};

/// Maximum nesting depth accepted by the parser (arrays + objects),
/// bounding recursion on hostile input.
const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a finite `f64` so it round-trips bit-exactly *and* stays a
/// float on re-parse: Rust's shortest representation, with `.0`
/// appended when it would otherwise read as an integer literal.
fn push_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; encode as null (decodes to Unit,
        // which typed f64 decoding rejects loudly rather than
        // silently corrupting).
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn encode(v: &Value, out: &mut String, indent: Option<usize>) {
    let (nl, pad, pad_in) = match indent {
        Some(level) => ("\n", "  ".repeat(level), "  ".repeat(level + 1)),
        None => ("", String::new(), String::new()),
    };
    let deeper = indent.map(|l| l + 1);
    match v {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::F64(x) => push_f64(out, *x),
        Value::Str(s) => push_json_str(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                encode(item, out, deeper);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) => {
            let pairs: Vec<Value> =
                entries.iter().map(|(k, v)| Value::Seq(vec![k.clone(), v.clone()])).collect();
            encode(&Value::Seq(pairs), out, indent);
        }
        Value::Record(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (name, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                push_json_str(out, name);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                encode(v, out, deeper);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
        Value::Variant(name, payload) => match (name.as_str(), payload.as_ref()) {
            // Option reads as plain JSON: None → null, Some(x) → x.
            ("None", Value::Unit) => out.push_str("null"),
            ("Some", Value::Seq(items)) if items.len() == 1 => encode(&items[0], out, indent),
            (_, Value::Unit) => push_json_str(out, name),
            (_, payload) => {
                out.push('{');
                out.push_str(nl);
                out.push_str(&pad_in);
                push_json_str(out, name);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                encode(payload, out, deeper);
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        },
    }
}

/// Encodes a [`Value`] as compact (single-line) JSON.
pub fn value_to_string(v: &Value) -> String {
    let mut out = String::new();
    encode(v, &mut out, None);
    out
}

/// Encodes a [`Value`] as indented, human-readable JSON.
pub fn value_to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    encode(v, &mut out, Some(0));
    out
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    value_to_string(&value.to_value())
}

/// Serializes `value` as indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    value_to_string_pretty(&value.to_value())
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("json at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.eat_keyword("\\u")
                                    .map_err(|_| self.err("unpaired surrogate"))?;
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => {
                    // ASCII fast path: one byte, one char.
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // One multi-byte UTF-8 scalar: its length comes
                    // from the leading byte, so only that slice is
                    // validated — never the whole remaining input
                    // (which would make string parsing quadratic).
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.contains(['.', 'e', 'E']) {
            let x: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
            Ok(Value::F64(x))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                // Integer literal too large for i128: keep the
                // magnitude as a float rather than failing.
                Err(_) => {
                    let x: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
                    Ok(Value::F64(x))
                }
            }
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Unit),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Record(fields));
                }
                loop {
                    self.skip_ws();
                    let name = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "':'")?;
                    let value = self.parse_value(depth + 1)?;
                    fields.push((name, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Record(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => Err(self.err("unexpected character")),
        }
    }
}

/// Parses JSON text into a [`Value`]; rejects trailing input.
pub fn value_from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Deserializes `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&value_from_str(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        for (v, s) in [
            (Value::Unit, "null"),
            (Value::Bool(true), "true"),
            (Value::Bool(false), "false"),
            (Value::Int(-42), "-42"),
            (Value::Str("hi".into()), "\"hi\""),
        ] {
            assert_eq!(value_to_string(&v), s);
            assert_eq!(value_from_str(s).unwrap(), v);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly_and_stay_floats() {
        for x in [0.0f64, -0.0, 2.0, 1.0 / 3.0, 6.02e23, 1.5e-9, f64::MIN_POSITIVE] {
            let s = value_to_string(&Value::F64(x));
            assert!(s.contains(['.', 'e', 'E']), "{s} must re-parse as a float");
            match value_from_str(&s).unwrap() {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{s}"),
                other => panic!("parsed {other:?}"),
            }
        }
        assert_eq!(value_to_string(&Value::F64(f64::NAN)), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1}\u{1F600}";
        let json = value_to_string(&Value::Str(s.into()));
        assert_eq!(value_from_str(&json).unwrap(), Value::Str(s.into()));
        // Escaped forms parse too (incl. a surrogate pair).
        assert_eq!(
            value_from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{e9}\u{1F600}".into())
        );
        assert!(value_from_str("\"\\ud800\"").is_err(), "unpaired surrogate");
    }

    #[test]
    fn containers_round_trip() {
        let v = Value::Record(vec![
            ("xs".into(), Value::Seq(vec![Value::Int(1), Value::F64(2.5)])),
            ("name".into(), Value::Str("grid".into())),
        ]);
        assert_eq!(value_to_string(&v), r#"{"xs":[1,2.5],"name":"grid"}"#);
        assert_eq!(value_from_str(&value_to_string(&v)).unwrap(), v);
        // Pretty form parses back identically.
        assert_eq!(value_from_str(&value_to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn typed_round_trip_through_text() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u32, 2]);
        m.insert("b".to_string(), vec![]);
        let back: BTreeMap<String, Vec<u32>> = from_str(&to_string(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn options_read_as_plain_json() {
        assert_eq!(to_string(&Option::<f64>::None), "null");
        assert_eq!(to_string(&Some(2.5f64)), "2.5");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.5").unwrap(), Some(2.5));
        // Integer literals land in f64 fields (client convenience).
        assert_eq!(from_str::<f64>("300").unwrap(), 300.0);
    }

    #[test]
    fn malformed_input_is_an_error() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"abc", "1 2", "{\"a\":}", "nul"] {
            assert!(value_from_str(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(value_from_str(&deep).is_err(), "depth-limited");
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = value_from_str(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(
            v,
            Value::Record(vec![
                ("a".into(), Value::Seq(vec![Value::Int(1), Value::Int(2)])),
                ("b".into(), Value::Unit),
            ])
        );
    }
}
