//! Offline vendored `parking_lot` facade.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics:
//! `lock()` returns the guard directly (no `Result`), and a poisoned
//! lock is entered transparently instead of propagating the poison —
//! matching real parking_lot, which has no poisoning.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock whose acquisition methods never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        static SHARED: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        SHARED.lock().push(1);
        SHARED.lock().push(2);
        assert_eq!(*SHARED.lock(), vec![1, 2]);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn poisoned_lock_is_entered() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
