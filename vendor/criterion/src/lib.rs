//! Offline vendored mini-criterion.
//!
//! A small wall-clock micro-benchmark harness with real criterion's
//! import surface for the subset this workspace uses: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`, `sample_size`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Each benchmark is warmed up once, then timed over `sample_size`
//! samples whose per-sample iteration count is auto-calibrated so a
//! sample takes a measurable amount of time. Mean, min, and max
//! per-iteration times are printed to stdout. There are no plots,
//! baselines, or statistical tests — this exists so `cargo bench`
//! works offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(200);

/// The benchmark harness root.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _parent: self, sample_size }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.default_sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Ends the group (stdout flush point; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, calibrating iterations per sample automatically.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: time a single iteration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iters_per_sample: 1, samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name}: no samples (closure never called iter)");
        return;
    }
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    println!(
        "  {name}: mean {} (min {}, max {}) [{} samples x {} iters]",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        b.samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs = black_box(runs + 1)));
        group.finish();
        assert!(runs > 0, "closure actually ran");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
