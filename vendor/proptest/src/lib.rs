//! Offline vendored mini-proptest.
//!
//! Deterministic strategy-based random testing with the import surface
//! of real proptest, scoped to what this workspace uses:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`);
//! * [`Strategy`] implemented for numeric ranges, tuples, [`Just`],
//!   [`any`], [`collection::vec`], [`Union`] (via [`prop_oneof!`]),
//!   and [`Strategy::prop_map`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] (panic-based here).
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the drawn values' debug representation left to the assertion
//! message. Cases are derived deterministically from the test's module
//! path and name, so failures reproduce exactly across runs.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// FNV-1a, used to derive a per-test seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic RNG for one test case (used by [`proptest!`]).
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(fnv1a(test_name.as_bytes()) ^ (u64::from(case) << 32 | 0x5bd1e995))
}

/// Execution configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Whole-domain strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy covering `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Boxes a strategy (used by [`prop_oneof!`] to unify option types).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: each element from `elem`, length uniform in
    /// `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// `cases` times with fresh deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@inner ($cfg) $($rest)*);
    };
    (@inner ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::case_rng(
                        concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@inner ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Point {
        x: f64,
        y: f64,
    }

    fn arb_point(scale: f64) -> impl Strategy<Value = Point> {
        (0.0..scale, 0.0..scale).prop_map(|(x, y)| Point { x, y })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..17, b in -1.0f64..=1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-1.0..=1.0).contains(&b), "b = {b}");
        }

        #[test]
        fn mapped_tuples_compose(p in arb_point(2.0), flag in any::<bool>()) {
            prop_assert!(p.x >= 0.0 && p.x < 2.0);
            let _ = flag;
        }

        #[test]
        fn oneof_picks_only_listed_values(v in prop_oneof![Just(1u32), Just(5u32)]) {
            prop_assert!(v == 1 || v == 5);
        }

        #[test]
        fn vec_lengths_respected(xs in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::case_rng("mod::test", 3);
        let mut b = crate::case_rng("mod::test", 3);
        let s = 0usize..100;
        assert_eq!(s.generate(&mut a), (0usize..100).generate(&mut b));
    }
}
