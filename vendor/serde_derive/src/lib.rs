//! Derive macros for the offline vendored mini-serde.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls (the
//! value-tree traits of the vendored `serde` crate) for the item shapes
//! this workspace actually uses:
//!
//! * structs with named fields;
//! * tuple structs;
//! * enums whose variants are unit or tuple variants.
//!
//! Generic parameters and struct-variant enums are rejected with a
//! compile error naming the unsupported shape — extend the parser here
//! if a new shape appears.
//!
//! Built without `syn`/`quote` (offline build): the item is parsed
//! directly from the `proc_macro::TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item a derive was placed on.
enum Item {
    /// Struct with named fields, in declaration order.
    NamedStruct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` fields.
    TupleStruct { name: String, arity: usize },
    /// Enum; each variant is `(name, payload arity)` (0 = unit).
    Enum { name: String, variants: Vec<(String, usize)> },
}

fn is_punct(t: &TokenTree, ch: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past any `#[...]` attribute sequences at `idx`.
fn skip_attrs(tokens: &[TokenTree], idx: &mut usize) {
    while *idx + 1 < tokens.len()
        && is_punct(&tokens[*idx], '#')
        && matches!(&tokens[*idx + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        *idx += 2;
    }
}

/// Advances past `pub` / `pub(...)` visibility at `idx`.
fn skip_vis(tokens: &[TokenTree], idx: &mut usize) {
    if *idx < tokens.len() && is_ident(&tokens[*idx], "pub") {
        *idx += 1;
        if *idx < tokens.len()
            && matches!(&tokens[*idx], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            *idx += 1;
        }
    }
}

/// Counts top-level comma-separated segments in a field list,
/// tracking `<...>` nesting so generic arguments don't split fields.
fn count_tuple_fields(group: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut segments = 0usize;
    let mut segment_has_tokens = false;
    for t in group {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                segments += 1;
                segment_has_tokens = false;
                continue;
            }
            _ => {}
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        segments += 1;
    }
    segments
}

/// Parses the named-field list inside a struct's brace group.
fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut idx = 0usize;
    while idx < group.len() {
        skip_attrs(group, &mut idx);
        if idx >= group.len() {
            break;
        }
        skip_vis(group, &mut idx);
        let TokenTree::Ident(name) = &group[idx] else {
            panic!("serde derive: expected field name, got {:?}", group[idx]);
        };
        fields.push(name.to_string());
        idx += 1;
        assert!(is_punct(&group[idx], ':'), "serde derive: expected ':' after field name");
        idx += 1;
        // Skip the type: everything up to the next top-level comma.
        let mut depth = 0i32;
        while idx < group.len() {
            match &group[idx] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    idx += 1;
                    break;
                }
                _ => {}
            }
            idx += 1;
        }
    }
    fields
}

/// Parses the variant list inside an enum's brace group.
fn parse_variants(group: &[TokenTree]) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut idx = 0usize;
    while idx < group.len() {
        skip_attrs(group, &mut idx);
        if idx >= group.len() {
            break;
        }
        let TokenTree::Ident(name) = &group[idx] else {
            panic!("serde derive: expected variant name, got {:?}", group[idx]);
        };
        let name = name.to_string();
        idx += 1;
        let mut arity = 0usize;
        if idx < group.len() {
            match &group[idx] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    arity = count_tuple_fields(&inner);
                    idx += 1;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    panic!("serde derive: struct variant '{name}' unsupported");
                }
                _ => {}
            }
        }
        variants.push((name, arity));
        // Skip any discriminant and the trailing comma.
        while idx < group.len() && !is_punct(&group[idx], ',') {
            idx += 1;
        }
        idx += 1;
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0usize;
    skip_attrs(&tokens, &mut idx);
    skip_vis(&tokens, &mut idx);

    let kind = match &tokens[idx] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde derive: expected 'struct' or 'enum', got {other:?}"),
    };
    idx += 1;
    let TokenTree::Ident(name) = &tokens[idx] else {
        panic!("serde derive: expected type name");
    };
    let name = name.to_string();
    idx += 1;
    if idx < tokens.len() && is_punct(&tokens[idx], '<') {
        panic!("serde derive: generic type '{name}' unsupported");
    }

    match (kind.as_str(), &tokens[idx]) {
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::NamedStruct { name, fields: parse_named_fields(&inner) }
        }
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::TupleStruct { name, arity: count_tuple_fields(&inner) }
        }
        ("enum", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::Enum { name, variants: parse_variants(&inner) }
        }
        _ => panic!("serde derive: unsupported item shape for '{name}'"),
    }
}

/// Derives the vendored `serde::Serialize` (value-tree) impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Record(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> =
                (0..arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| {
                    if *arity == 0 {
                        format!(
                            "{name}::{v} => ::serde::Value::Variant(String::from(\"{v}\"), \
                             Box::new(::serde::Value::Unit)),"
                        )
                    } else {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Variant(String::from(\"{v}\"), \
                             Box::new(::serde::Value::Seq(vec![{}]))),",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` (value-tree) impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::record_field(fields, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let fields = ::serde::value_record(v, \"{name}\")?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let items = ::serde::value_seq(v, {arity}, \"{name}\")?;\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| {
                    if *arity == 0 {
                        format!("\"{v}\" => Ok({name}::{v}),")
                    } else {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => {{\n\
                                 let items = ::serde::value_seq(payload, {arity}, \"{name}\")?;\n\
                                 Ok({name}::{v}({}))\n\
                             }}",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let (variant, payload) = ::serde::value_variant(v, \"{name}\")?;\n\
                         let _ = payload;\n\
                         match variant {{\n{}\n\
                             other => Err(::serde::Error::msg(format!(\n\
                                 \"{name}: unknown variant '{{other}}'\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse().expect("generated Deserialize impl parses")
}
