//! Drive the `nanoleak-serve` HTTP API as a client: submit a
//! temperature × Vdd condition-grid job and print the resulting
//! leakage matrix, stream a sharded sweep job and page its per-shard
//! partials as they land, then run a circuit-level Monte-Carlo job
//! and page its distribution partials the same way.
//!
//! Starts a service instance in-process on an ephemeral port (exactly
//! what `nanoleak-cli serve` runs), then talks to it over plain TCP —
//! the same bytes an external client would send:
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```
//!
//! The grid is the paper's operating-space question at batch scale
//! (cf. Sultan et al., *Is Leakage Power a Linear Function of
//! Temperature?*): every (temperature, Vdd) cell characterizes the
//! scaled technology through the server's shared in-RAM cache and
//! runs one deterministic 64-vector sweep.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nanoleak_serve::{ServeConfig, Server};
use rand::{RngCore, SeedableRng};
use serde::{json, Deserialize as _, Value};

/// One HTTP/1.1 exchange; returns `(status, retry_after, body)`.
fn http_full(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Option<u64>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: client\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send request");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    let status: u16 = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let retry_after = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(n, _)| n.eq_ignore_ascii_case("retry-after"))
        .and_then(|(_, v)| v.trim().parse().ok());
    (status, retry_after, body.to_string())
}

/// One HTTP/1.1 exchange; returns the response body.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    http_full(addr, method, path, body).2
}

/// Submits a job, honoring the server's admission control: a 503/429
/// shed is retried after the `Retry-After` hint (floored by a capped
/// exponential backoff, jittered so a shed fleet doesn't reconverge
/// on the same instant). This is the client half of the overload
/// contract — the server promises a useful hint, the client promises
/// to actually back off.
fn submit_job(addr: std::net::SocketAddr, job: &str) -> Value {
    let mut rng = rand::rngs::StdRng::seed_from_u64(std::process::id() as u64);
    let mut backoff = Duration::from_millis(250);
    const BACKOFF_CAP: Duration = Duration::from_secs(30);
    const ATTEMPTS: u32 = 8;
    for attempt in 1..=ATTEMPTS {
        let (status, retry_after, body) = http_full(addr, "POST", "/v1/jobs", job);
        match status {
            202 => return json::value_from_str(&body).expect("submit JSON"),
            503 | 429 => {
                let hinted = retry_after.map(Duration::from_secs).unwrap_or(backoff);
                // Jitter: 50%..150% of the wait, so callers shed
                // together don't retry together.
                let wait = hinted.max(backoff).mul_f64(0.5 + (rng.next_u64() % 1000) as f64 / 1e3);
                println!(
                    "  server shed the job ({status}, retry in {:.1} s, attempt {attempt}/{ATTEMPTS})",
                    wait.as_secs_f64()
                );
                std::thread::sleep(wait);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
            other => panic!("submit failed with {other}: {body}"),
        }
    }
    panic!("server still shedding after {ATTEMPTS} attempts");
}

fn get<'v>(v: &'v Value, name: &str) -> &'v Value {
    let Value::Record(fields) = v else { panic!("expected object, got {v:?}") };
    &fields.iter().find(|(n, _)| n == name).unwrap_or_else(|| panic!("no '{name}'")).1
}

fn main() {
    // A resident service with two job workers, RAM cache only.
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        disk_cache: false,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let shutdown = server.shutdown_handle();
    let host = std::thread::spawn(move || server.run());
    println!("nanoleak-serve on http://{addr}\n");

    // Submit the condition grid: 4 temperatures × 3 supply scalings.
    let job = r#"{
        "type": "grid", "target": "s1196", "vectors": 64, "seed": 2005, "coarse": true,
        "temps": [300, 325, 350, 375], "vdd_scales": [0.8, 0.9, 1.0]
    }"#;
    let resp = submit_job(addr, job);
    let Value::Int(id) = get(&resp, "id") else { panic!("no job id: {resp:?}") };
    println!("submitted grid job #{id} (s1196, 4 temps x 3 Vdd scales, 64 vectors/cell)");

    // Poll until done.
    let result = loop {
        let body = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        let status = json::value_from_str(&body).expect("status JSON");
        let Value::Str(state) = get(&status, "status") else { panic!("bad status: {body}") };
        match state.as_str() {
            "done" => break get(&status, "result").clone(),
            "failed" => panic!("job failed: {body}"),
            _ => {
                print!(".");
                std::io::stdout().flush().ok();
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    };
    println!("\n");

    // Print the matrix: rows = temperature, columns = Vdd. Column
    // voltages come from the result cells themselves (each GridCell
    // carries the supply it actually ran at).
    let temps: Vec<f64> = Vec::from_value(get(&result, "temps")).expect("temps");
    let scales: Vec<f64> = Vec::from_value(get(&result, "vdd_scales")).expect("scales");
    let matrix: Vec<Vec<f64>> = Vec::from_value(get(&result, "mean_total_a")).expect("matrix");
    let Value::Seq(cells) = get(&result, "cells") else { panic!("cells missing") };
    let vdds: Vec<f64> = cells[..scales.len()]
        .iter()
        .map(|c| f64::from_value(get(c, "vdd")).expect("vdd"))
        .collect();
    println!("mean total leakage [uA] over the operating grid:");
    print!("  {:>8}", "T \\ Vdd");
    for vdd in &vdds {
        print!(" {vdd:>10.2} V");
    }
    println!();
    for (ti, row) in matrix.iter().enumerate() {
        print!("  {:>6.0} K", temps[ti]);
        for x in row {
            print!(" {:>12.4}", x * 1e6);
        }
        println!();
    }

    // Show what the resident cache did for the 12-cell fan-out.
    let stats = json::value_from_str(&http(addr, "GET", "/v1/stats", "")).expect("stats JSON");
    let cache = get(&stats, "cache");
    let int = |v: &Value| i64::from_value(v).expect("counter");
    println!(
        "\ncache: {} characterizations, {} RAM hits over the job",
        int(get(cache, "characterizations")),
        int(get(cache, "memory_hits"))
    );

    // Second act: a sharded sweep. 512 vectors in shards of 128 —
    // the same protocol that pages a 10^6-vector sweep without one
    // giant response body. Partials are polled as the job runs.
    let job = r#"{
        "type": "sweep", "target": "s1196", "vectors": 512, "seed": 2005,
        "shard_vectors": 128, "coarse": true
    }"#;
    let resp = submit_job(addr, job);
    let Value::Int(id) = get(&resp, "id") else { panic!("no job id: {resp:?}") };
    println!("\nsubmitted sharded sweep job #{id} (s1196, 512 vectors, 4 shards of 128)");

    // Page each shard in order; a 202 means "not computed yet".
    let mut shard = 0usize;
    let mut shard_means = Vec::new();
    while shard < 4 {
        let body = http(addr, "GET", &format!("/v1/jobs/{id}/result?shard={shard}"), "");
        let page = json::value_from_str(&body).expect("shard page JSON");
        let Value::Record(fields) = &page else { panic!("bad page: {body}") };
        if fields.iter().any(|(n, _)| n == "partial") {
            let partial = get(&page, "partial");
            let mean = f64::from_value(get(get(get(partial, "stats"), "total"), "mean"))
                .expect("shard mean");
            println!(
                "  shard {shard}: vectors {}..{} mean {:.4} uA",
                int(get(partial, "start")),
                int(get(partial, "start")) + int(get(partial, "vectors")),
                mean * 1e6
            );
            shard_means.push(mean);
            shard += 1;
        } else {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    // The merged result is bit-identical to a monolithic sweep of the
    // same seed — sharding is a transport detail, not a math change.
    let body = http(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
    let merged = json::value_from_str(&body).expect("result JSON");
    let stats = get(get(&merged, "result"), "stats");
    let mean = f64::from_value(get(get(stats, "total"), "mean")).expect("mean");
    println!("  merged: 512 vectors mean {:.4} uA (bit-exact vs monolithic)", mean * 1e6);

    // Third act: circuit-level Monte-Carlo variation (the paper's
    // Section 5.3 at circuit scale). Each sample is a perturbed die —
    // characterized through the server's memo cache — so shards stream
    // distribution partials through the same paging protocol.
    let job = r#"{
        "type": "mc", "target": "s838", "samples": 8, "seed": 2005, "sigma_vt": 0.05,
        "shard_samples": 4, "coarse": true
    }"#;
    let resp = submit_job(addr, job);
    let Value::Int(id) = get(&resp, "id") else { panic!("no job id: {resp:?}") };
    println!("\nsubmitted MC job #{id} (s838, 8 perturbed dies, sigma_vt 50 mV, 2 shards)");

    let mut shard = 0usize;
    while shard < 2 {
        let body = http(addr, "GET", &format!("/v1/jobs/{id}/result?shard={shard}"), "");
        let page = json::value_from_str(&body).expect("shard page JSON");
        let Value::Record(fields) = &page else { panic!("bad page: {body}") };
        if fields.iter().any(|(n, _)| n == "partial") {
            let summary = get(get(&page, "partial"), "summary");
            let loaded = f64::from_value(get(get(get(summary, "loaded"), "total"), "mean"))
                .expect("loaded mean");
            let unloaded = f64::from_value(get(get(get(summary, "unloaded"), "total"), "mean"))
                .expect("unloaded mean");
            println!(
                "  shard {shard}: loaded mean {:.4} uA vs unloaded {:.4} uA",
                loaded * 1e6,
                unloaded * 1e6
            );
            shard += 1;
        } else {
            std::thread::sleep(Duration::from_millis(200));
        }
    }

    // Shard partials stream before the job finishes — the fast MC
    // path still runs its deviation probe after the last shard — so
    // wait for "done" before asking for the merged result.
    loop {
        let body = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        let status = json::value_from_str(&body).expect("status JSON");
        let Value::Str(state) = get(&status, "status") else { panic!("bad status: {body}") };
        match state.as_str() {
            "done" => break,
            "failed" => panic!("mc job failed: {body}"),
            _ => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    let body = http(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
    let merged = json::value_from_str(&body).expect("result JSON");
    let summary = get(get(&merged, "result"), "summary");
    println!(
        "  merged: loading shifts the mean by {:+.2}% and the spread by {:+.2}% \
         (bit-exact vs in-process)",
        f64::from_value(get(summary, "mean_shift")).expect("mean_shift") * 100.0,
        f64::from_value(get(summary, "std_shift")).expect("std_shift") * 100.0,
    );

    // Where did the wall time go? `?debug=timings` on the job status
    // returns the per-stage breakdown aggregated from the span
    // capture the executor ran under (the full span tree is at
    // GET /v1/jobs/{id}/trace).
    let body = http(addr, "GET", &format!("/v1/jobs/{id}?debug=timings"), "");
    let status = json::value_from_str(&body).expect("timings JSON");
    let timings = get(&status, "timings");
    let ms = |name: &str| f64::from_value(get(timings, name)).expect(name);
    println!("\ntiming breakdown of MC job #{id} (?debug=timings):");
    for (label, key) in [
        ("queue wait", "queue_wait_ms"),
        ("characterize", "characterize_ms"),
        ("estimate", "estimate_ms"),
        ("merge", "merge_ms"),
        ("serialize", "serialize_ms"),
        ("total", "total_ms"),
    ] {
        println!("  {label:>12}: {:9.3} ms", ms(key));
    }

    shutdown.request();
    host.join().expect("server thread").expect("server run");
}
