//! Minimum-leakage-vector search with the analysis engine.
//!
//! The paper's Section 6 observes that the optimal standby vector
//! shifts once loading is modeled — which makes a fast, loading-aware
//! MLV search the natural engine workload. This example runs all
//! three strategies on a mid-size random block and shows that greedy
//! hill-climbing with a handful of restarts recovers the exhaustive
//! optimum at a fraction of the evaluations.
//!
//! ```sh
//! cargo run --release --example mlv_search
//! ```

use nanoleak::prelude::*;
use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};

fn report(label: &str, result: &MlvResult) {
    let t = &result.telemetry;
    println!(
        "  {label:<12} {:>9.4} uA  vector {}  ({} evals, {:.0} ms)",
        result.objective * 1e6,
        result.pattern.pi.iter().map(|&b| if b { '1' } else { '0' }).collect::<String>(),
        t.evaluations,
        t.elapsed.as_secs_f64() * 1e3,
    );
}

fn main() {
    let tech = Technology::d25();
    println!("characterizing cell library ...");
    let lib = CellLibrary::shared_with_options(
        &tech,
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    );

    // A 10-input combinational block: 2^10 = 1024 vectors, small
    // enough to enumerate, large enough that sampling can miss.
    let raw = random_circuit(&RandomCircuitSpec::new("mlv-demo", 10, 4, 120, 0, 42));
    let circuit = normalize(&raw).expect("random circuits normalize");
    println!(
        "circuit: {} gates, {} inputs, {} vectors\n",
        circuit.gate_count(),
        circuit.inputs().len(),
        1u64 << circuit.inputs().len()
    );

    println!("minimum-leakage vector by strategy:");
    let exhaustive = mlv_search(
        &circuit,
        &lib,
        &MlvConfig { strategy: MlvStrategy::Exhaustive, ..Default::default() },
    )
    .expect("exhaustive search");
    report("exhaustive", &exhaustive);

    let random = mlv_search(
        &circuit,
        &lib,
        &MlvConfig { strategy: MlvStrategy::Random { samples: 64 }, ..Default::default() },
    )
    .expect("random search");
    report("random-64", &random);

    let climb = mlv_search(
        &circuit,
        &lib,
        &MlvConfig {
            strategy: MlvStrategy::HillClimb { restarts: 6, max_steps: 64 },
            ..Default::default()
        },
    )
    .expect("hill climb");
    report("hill-climb", &climb);

    let gap = |r: &MlvResult| (r.objective - exhaustive.objective) / exhaustive.objective * 100.0;
    println!("\ngap to exhaustive optimum:");
    println!("  random-64  : {:+.3} %", gap(&random));
    println!("  hill-climb : {:+.3} %", gap(&climb));

    // The worst-case vector, for the standby-current bound.
    let worst = mlv_search(
        &circuit,
        &lib,
        &MlvConfig { goal: MlvGoal::Max, strategy: MlvStrategy::Exhaustive, ..Default::default() },
    )
    .expect("max search");
    println!(
        "\nvector-space spread: min {:.4} uA .. max {:.4} uA ({:.2}x)",
        exhaustive.objective * 1e6,
        worst.objective * 1e6,
        worst.objective / exhaustive.objective
    );
}
