//! Quickstart: the three leakage mechanisms of one device, the leakage
//! of a gate, and the loading effect — in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nanoleak::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 25 nm super-halo technology (VDD = 0.9 V).
    let tech = Technology::d25();

    // --- Device level -----------------------------------------------------
    // An OFF NMOS with its drain at VDD leaks through all three
    // mechanisms (paper Fig. 2).
    let nmos = Transistor::from_design(&tech.nmos);
    let (_, parts) = nmos.leakage(Bias::new(0.0, tech.vdd, 0.0, 0.0), 300.0);
    println!("OFF NMOS @ 300 K:");
    println!("  subthreshold : {:8.2} nA", parts.sub * 1e9);
    println!("  gate tunnel  : {:8.2} nA", parts.gate * 1e9);
    println!("  junction BTBT: {:8.2} nA", parts.btbt * 1e9);

    // --- Cell level --------------------------------------------------------
    // Inverter leakage depends on the input state (eq. 6 of the paper).
    for input in ["0", "1"] {
        let v = InputVector::parse(input).unwrap();
        let sol = eval_isolated(&tech, 300.0, CellType::Inv, v)?;
        println!(
            "INV(input={input}): total {:7.2} nA  (sub {:6.1}, gate {:6.1}, btbt {:5.2})",
            sol.breakdown.total() * 1e9,
            sol.breakdown.sub * 1e9,
            sol.breakdown.gate * 1e9,
            sol.breakdown.btbt * 1e9,
        );
    }

    // --- The loading effect ------------------------------------------------
    // 2 uA of fanin gate-tunneling current lifts a logic-0 input node a
    // few mV above ground; the inverter's subthreshold leakage rises.
    let v = InputVector::parse("0").unwrap();
    let nominal = eval_loaded(&tech, 300.0, CellType::Inv, v, &[0.0], 0.0)?;
    let loaded = eval_loaded(&tech, 300.0, CellType::Inv, v, &[2e-6], 0.0)?;
    let ld = (loaded.breakdown.total() - nominal.breakdown.total()) / nominal.breakdown.total();
    println!(
        "input loading of 2 uA: V(in) {:.2} mV -> {:.2} mV, LD_ALL = {:+.2}%",
        nominal.input_voltages[0] * 1e3,
        loaded.input_voltages[0] * 1e3,
        ld * 100.0
    );

    // --- Circuit level -----------------------------------------------------
    // A 3-gate circuit estimated with the paper's Fig. 13 algorithm.
    let lib = CellLibrary::shared_with_options(
        &tech,
        300.0,
        &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]),
    );
    let mut b = CircuitBuilder::new("demo");
    let a = b.add_input("a");
    let x = b.add_gate(CellType::Inv, &[a], "x");
    let y = b.add_gate(CellType::Nand2, &[a, x], "y");
    let z = b.add_gate(CellType::Inv, &[y], "z");
    b.mark_output(z);
    let circuit = b.build()?;

    let with = estimate(&circuit, &lib, &Pattern::zeros(&circuit), EstimatorMode::Lut)?;
    let without = estimate(&circuit, &lib, &Pattern::zeros(&circuit), EstimatorMode::NoLoading)?;
    println!(
        "3-gate circuit: {:.2} nA without loading, {:.2} nA with ({:+.2}%)",
        without.total.total() * 1e9,
        with.total.total() * 1e9,
        with.total_relative_change(&without) * 100.0
    );
    Ok(())
}
