//! Process variation and the loading effect (paper Section 5.3):
//! Monte-Carlo leakage spread of the canonical loaded inverter, and
//! how loading inflates both the mean and the tail of the
//! distribution.
//!
//! ```sh
//! cargo run --release --example process_corners
//! ```

use nanoleak::prelude::*;
use nanoleak::variation::{Histogram, Series};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::d25();
    let samples = 2000;

    let config = McConfig { samples, ..Default::default() };
    println!(
        "running {} Monte-Carlo samples (sigma_L = {:.1} nm, sigma_Tox = {:.2} A, \
         sigma_Vt = {:.0} mV inter / {:.0} mV intra, sigma_VDD = {:.1} mV) ...",
        samples,
        config.sigmas.l * 1e9,
        config.sigmas.tox * 1e10,
        config.sigmas.vt_inter * 1e3,
        config.sigmas.vt_intra * 1e3,
        config.sigmas.vdd * 1e3,
    );
    let result = run_inverter_mc(&tech, &config)?;

    println!(
        "\n{:>14} {:>12} {:>12} {:>12} {:>12}",
        "component", "mean-no[nA]", "mean-ld[nA]", "std-no[nA]", "std-ld[nA]"
    );
    for (series, label) in [
        (Series::Sub, "subthreshold"),
        (Series::Gate, "gate"),
        (Series::Btbt, "btbt"),
        (Series::Total, "total"),
    ] {
        let u = result.stats(series, false);
        let l = result.stats(series, true);
        println!(
            "{label:>14} {:12.2} {:12.2} {:12.2} {:12.2}",
            u.mean * 1e9,
            l.mean * 1e9,
            u.std * 1e9,
            l.std * 1e9
        );
    }
    println!(
        "\nloading shifts the total-leakage mean by {:+.2}% and the spread by {:+.2}%",
        result.mean_shift() * 100.0,
        result.std_shift() * 100.0
    );

    // A coarse ASCII rendition of the Fig. 10 total-leakage histogram.
    let totals_no = result.series(Series::Total, false);
    let totals_ld = result.series(Series::Total, true);
    let hi = totals_no.iter().chain(&totals_ld).copied().fold(0.0_f64, f64::max) * 1.02;
    let h_no = Histogram::of(&totals_no, 0.0, hi, 24);
    let h_ld = Histogram::of(&totals_ld, 0.0, hi, 24);
    let peak = h_no.counts.iter().chain(&h_ld.counts).copied().max().unwrap_or(1).max(1);
    println!("\ntotal leakage distribution ('.' = no loading, '#' = with loading):");
    for (i, c) in h_no.centers().iter().enumerate() {
        let dots = h_no.counts[i] * 40 / peak;
        let hashes = h_ld.counts[i] * 40 / peak;
        println!("{:8.1} nA |{}", c * 1e9, ".".repeat(dots));
        println!("{:>12}|{}", "", "#".repeat(hashes));
    }
    Ok(())
}
