//! Input-vector control under the loading effect (paper Section 6):
//! "The input pattern for which we obtain the minimum total leakage
//! changes due to the loading effect. This has significant impact on
//! the input vector control based leakage control techniques."
//!
//! Exhaustively ranks all input vectors of small combinational blocks
//! with and without loading, and reports blocks whose optimal standby
//! vector flips once loading is accounted for.
//!
//! ```sh
//! cargo run --release --example vector_control
//! ```

use nanoleak::prelude::*;
use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};

fn search(circuit: &Circuit, lib: &CellLibrary, mode: EstimatorMode) -> (usize, Vec<f64>) {
    let n = circuit.inputs().len();
    let mut totals = Vec::with_capacity(1 << n);
    for bits in 0..(1usize << n) {
        let pattern = Pattern { pi: (0..n).map(|i| bits >> i & 1 == 1).collect(), states: vec![] };
        totals.push(
            estimate(circuit, lib, &pattern, mode).expect("estimation converges").total.total(),
        );
    }
    let best = totals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    (best, totals)
}

fn main() {
    let tech = Technology::d25();
    println!("characterizing cell library ...");
    let lib = CellLibrary::shared_with_options(
        &tech,
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    );

    let mut flips = 0;
    let mut scanned = 0;
    let mut closest: (f64, u64) = (f64::INFINITY, 0);
    for seed in 0..60u64 {
        let raw = random_circuit(&RandomCircuitSpec::new(&format!("blk{seed}"), 4, 2, 14, 0, seed));
        let circuit = match normalize(&raw) {
            Ok(c) => c,
            Err(_) => continue,
        };
        scanned += 1;
        let (best_no, totals_no) = search(&circuit, &lib, EstimatorMode::NoLoading);
        let (best_ld, totals_ld) = search(&circuit, &lib, EstimatorMode::Lut);
        if best_no != best_ld {
            flips += 1;
            let penalty = (totals_ld[best_no] - totals_ld[best_ld]) / totals_ld[best_ld] * 100.0;
            println!(
                "block seed {seed:2}: optimum flips {best_no:04b} -> {best_ld:04b} \
                 (no-loading: {:.2} nA, loading-aware: {:.2} nA; picking the naive vector \
                 costs +{penalty:.2}%)",
                totals_no[best_no] * 1e9,
                totals_ld[best_ld] * 1e9,
            );
        } else {
            // Track how close the top-2 ranking is — the flip margin.
            let mut sorted = totals_no.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let margin = (sorted[1] - sorted[0]) / sorted[0];
            if margin < closest.0 {
                closest = (margin, seed);
            }
        }
    }
    println!(
        "\n{flips} of {scanned} random 4-input blocks change their optimal standby vector \
         once loading is modeled"
    );
    if flips == 0 {
        println!(
            "(closest call: block seed {} with a top-2 margin of {:.3}%)",
            closest.1,
            closest.0 * 100.0
        );
    } else {
        println!(
            "=> vector-based leakage control must account for the loading effect \
             (paper Section 6)"
        );
    }
}
