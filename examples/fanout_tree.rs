//! The paper's Fig. 1 scenario: a driver D1 feeding gate G alongside
//! fanin siblings, with G fanning out to several loads — the canonical
//! loading-effect topology. Compares the fast estimator against the
//! full reference solve, gate by gate.
//!
//! ```sh
//! cargo run --release --example fanout_tree
//! ```

use nanoleak::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::d25();
    let lib = CellLibrary::shared_with_options(
        &tech,
        300.0,
        &CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]),
    );

    // Fig. 1: D1 drives node IN; G and three siblings (Gin) read IN;
    // G's output node N0 feeds four loads (Gout), one of which feeds
    // further gates (Hout).
    let mut b = CircuitBuilder::new("fig1");
    let src = b.add_input("src");
    let node_in = b.add_gate(CellType::Inv, &[src], "IN"); // D1
    let n0 = b.add_gate(CellType::Inv, &[node_in], "N0"); // G
    for i in 0..3 {
        let s = b.add_gate(CellType::Inv, &[node_in], &format!("gin{i}"));
        b.mark_output(s);
    }
    let mut last = n0;
    for i in 0..4 {
        let g = b.add_gate(CellType::Inv, &[n0], &format!("gout{i}"));
        last = g;
    }
    for i in 0..3 {
        let h = b.add_gate(CellType::Inv, &[last], &format!("hout{i}"));
        b.mark_output(h);
    }
    let circuit = b.build()?;
    println!("{}", CircuitStats::compute(&circuit));

    let pattern = Pattern { pi: vec![true], states: vec![] }; // IN = '0', N0 = '1'
    let est = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut)?;
    let base = estimate(&circuit, &lib, &pattern, EstimatorMode::NoLoading)?;
    let reference =
        reference_leakage(&circuit, &tech, 300.0, &pattern, &ReferenceOptions::default())?;

    println!("\nper-gate leakage [nA]  (G is the gate driving N0)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9}",
        "gate", "no-loading", "estimated", "reference", "LD_ALL%"
    );
    for (gid, gate) in circuit.gates().iter().enumerate() {
        let name = circuit.net_name(gate.output);
        let nl = base.per_gate[gid].total() * 1e9;
        let es = est.per_gate[gid].total() * 1e9;
        let rf = reference.leakage.per_gate[gid].total() * 1e9;
        println!("{name:>8} {nl:12.2} {es:12.2} {rf:12.2} {:+9.2}", (es - nl) / nl * 100.0);
    }

    let acc = accuracy(&est, &reference.leakage);
    println!(
        "\ntotals: baseline {:.1} nA, estimator {:.1} nA, reference {:.1} nA",
        base.total.total() * 1e9,
        est.total.total() * 1e9,
        reference.leakage.total.total() * 1e9
    );
    println!(
        "estimator vs reference: total {:+.2}%, worst gate {:.2}%",
        acc.total_rel_err * 100.0,
        acc.max_gate_rel_err * 100.0
    );
    println!(
        "node IN sits at {:.2} mV (lifted off ground by fanin tunneling)",
        reference.net_voltages[circuit.find_net("IN").unwrap().0] * 1e3
    );
    println!(
        "node N0 sits at {:.2} mV below VDD (sagged by fanout tunneling)",
        (tech.vdd - reference.net_voltages[circuit.find_net("N0").unwrap().0]) * 1e3
    );
    Ok(())
}
