//! Guard: library crates never print. Human-facing output belongs to
//! the CLI (`src/bin/`) and the bench crate's report bins; everything
//! under `crates/*/src` must log through `nanoleak-obs` instead, so
//! services get leveled JSON lines on stderr rather than stray text
//! interleaved into pipes. CI enforces the same rule with a grep.

use std::path::{Path, PathBuf};

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn library_crates_do_not_print() {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut offenders = Vec::new();
    for entry in std::fs::read_dir(&crates).expect("crates dir") {
        let entry = entry.expect("crate entry");
        // The bench crate's bins are human-facing reports.
        if entry.file_name() == "bench" {
            continue;
        }
        let src = entry.path().join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src, &mut files);
        for file in files {
            let text = std::fs::read_to_string(&file).expect("read source");
            for (i, line) in text.lines().enumerate() {
                // Comments (incl. doc examples) may show prints.
                let code = line.split("//").next().unwrap_or("");
                if code.contains("println!") || code.contains("eprintln!") {
                    offenders.push(format!("{}:{}: {}", file.display(), i + 1, line.trim()));
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "bare prints in library crates (log via nanoleak-obs instead):\n{}",
        offenders.join("\n")
    );
}
