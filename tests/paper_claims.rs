//! The paper's headline quantitative claims, asserted end-to-end:
//!
//! * loading modifies a single gate's leakage by up to ~8–10%;
//! * in circuits, per-component averages are sub up / gate down /
//!   btbt down, with the net total around +5% (cancellation);
//! * the estimator tracks the full reference within a few percent;
//! * the estimator is orders of magnitude faster than the reference.

use std::time::Instant;

use nanoleak::prelude::*;
use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};
use rand::SeedableRng;
use std::sync::Arc;

fn library() -> Arc<CellLibrary> {
    CellLibrary::shared_with_options(
        &Technology::d25(),
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    )
}

#[test]
fn single_gate_loading_reaches_percent_scale() {
    // Paper conclusion: "loading effect modifies the leakage of a logic
    // gate by 8-10%". With a 3 uA input loading on a '0' input our
    // inverter moves its total by several percent and its subthreshold
    // component by ~10%.
    let tech = Technology::d25();
    let v = InputVector::parse("0").unwrap();
    let nom = eval_loaded(&tech, 300.0, CellType::Inv, v, &[0.0], 0.0).unwrap().breakdown;
    let load = eval_loaded(&tech, 300.0, CellType::Inv, v, &[3e-6], 0.0).unwrap().breakdown;
    let ld_sub = (load.sub - nom.sub) / nom.sub;
    let ld_total = (load.total() - nom.total()) / nom.total();
    assert!(ld_sub > 0.05 && ld_sub < 0.25, "LD(sub) = {}%", ld_sub * 100.0);
    assert!(ld_total > 0.02 && ld_total < 0.15, "LD(total) = {}%", ld_total * 100.0);
}

#[test]
fn circuit_level_cancellation_keeps_net_effect_moderate() {
    // Per-gate effects reach +/- several percent but the circuit total
    // moves only a few percent (paper: ~5%).
    let lib = library();
    let raw = random_circuit(&RandomCircuitSpec::new("claim", 10, 5, 150, 6, 321));
    let circuit = normalize(&raw).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let patterns = Pattern::random_batch(&circuit, &mut rng, 12);
    let loaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::Lut).unwrap();
    let unloaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::NoLoading).unwrap();
    let pairs: Vec<_> = loaded.into_iter().zip(unloaded).collect();
    let impact = LoadingImpact::from_pairs(&pairs);
    assert!(
        impact.avg_total > 0.0 && impact.avg_total < 0.10,
        "net total change = {}%",
        impact.avg_total * 100.0
    );
    // Components move in the paper's directions.
    assert!(impact.avg.sub > impact.avg_total, "sub exceeds the net change");
    assert!(impact.avg.gate < 0.0 && impact.avg.btbt < 0.0);
}

#[test]
fn estimator_is_orders_of_magnitude_faster_than_reference() {
    // The paper reports ~1000x vs SPICE. Against our reference solver
    // (which shares the cell-solve machinery, so the gap is smaller by
    // construction) we still demand >= 30x per pattern in debug builds;
    // release benches show far larger ratios.
    let tech = Technology::d25();
    let lib = library();
    let raw = random_circuit(&RandomCircuitSpec::new("speed", 10, 5, 200, 4, 55));
    let circuit = normalize(&raw).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let pattern = Pattern::random(&circuit, &mut rng);

    // Warm both paths once.
    let _ = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).unwrap();
    let t0 = Instant::now();
    for _ in 0..5 {
        let _ = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).unwrap();
    }
    let est_time = t0.elapsed().as_secs_f64() / 5.0;

    let t0 = Instant::now();
    let _ =
        reference_leakage(&circuit, &tech, 300.0, &pattern, &ReferenceOptions::default()).unwrap();
    let ref_time = t0.elapsed().as_secs_f64();

    let speedup = ref_time / est_time;
    assert!(speedup > 30.0, "speedup only {speedup:.0}x ({est_time:.6}s vs {ref_time:.3}s)");
}

#[test]
fn compiled_sweep_stats_stay_pinned_to_the_reference_estimator() {
    // PR 4 moved the engine's sweeps onto the compiled estimator plan;
    // their statistics must stay pinned to what the seed-era
    // per-pattern path produces: re-derive every pattern with
    // `pattern_for_index`, score it with the reference `estimate()`,
    // run the same sequential reduction — and demand bit-equality on
    // every published statistic, for more than one thread count.
    use nanoleak_engine::pattern_for_index;

    let lib = library();
    let raw = random_circuit(&RandomCircuitSpec::new("pin", 8, 4, 120, 3, 2005));
    let circuit = normalize(&raw).unwrap();
    let base = SweepConfig { vectors: 48, seed: 2005, threads: 1, ..Default::default() };

    let totals: Vec<LeakageBreakdown> = (0..base.vectors)
        .map(|i| {
            let p = pattern_for_index(&circuit, base.seed, i);
            estimate(&circuit, &lib, &p, EstimatorMode::Lut).unwrap().total
        })
        .collect();
    let series = |f: fn(&LeakageBreakdown) -> f64| -> Vec<f64> { totals.iter().map(f).collect() };
    let total_series = series(LeakageBreakdown::total);
    let argbest = |less: bool| -> usize {
        let mut best = 0;
        for (i, &t) in total_series.iter().enumerate().skip(1) {
            if (less && t < total_series[best]) || (!less && t > total_series[best]) {
                best = i;
            }
        }
        best
    };

    for threads in [1, 3] {
        let report = sweep(&circuit, &lib, &SweepConfig { threads, ..base }).unwrap();
        let s = &report.stats;
        assert_eq!(s.total, ScalarStats::of(&total_series), "threads = {threads}");
        assert_eq!(s.sub, ScalarStats::of(&series(|b| b.sub)));
        assert_eq!(s.gate, ScalarStats::of(&series(|b| b.gate)));
        assert_eq!(s.btbt, ScalarStats::of(&series(|b| b.btbt)));
        assert_eq!(s.min.index, argbest(true));
        assert_eq!(s.max.index, argbest(false));
        assert_eq!(s.min.leakage, totals[s.min.index]);
        assert_eq!(s.max.leakage, totals[s.max.index]);
        assert_eq!(s.min.pattern, pattern_for_index(&circuit, base.seed, s.min.index));
    }
}

#[test]
fn reference_voltages_reveal_multi_level_propagation_is_weak() {
    // Paper Section 6's argument for one-level truncation: a
    // second-level neighbor's gate leakage barely moves this gate's
    // nets. Build a 3-stage chain with fanout only at the last stage
    // and check stage-1's output voltage barely changes when the
    // far-away loads are added.
    let tech = Technology::d25();
    let build = |tail_loads: usize| {
        let mut b = CircuitBuilder::new("chain");
        let a = b.add_input("a");
        let s1 = b.add_gate(CellType::Inv, &[a], "s1");
        let s2 = b.add_gate(CellType::Inv, &[s1], "s2");
        for i in 0..tail_loads {
            let y = b.add_gate(CellType::Inv, &[s2], &format!("y{i}"));
            b.mark_output(y);
        }
        b.mark_output(s2);
        b.build().unwrap()
    };
    let pattern = Pattern { pi: vec![false], states: vec![] };
    let bare = build(0);
    let loaded = build(8);
    let v_bare =
        reference_leakage(&bare, &tech, 300.0, &pattern, &ReferenceOptions::default()).unwrap();
    let v_loaded =
        reference_leakage(&loaded, &tech, 300.0, &pattern, &ReferenceOptions::default()).unwrap();
    let s1_bare = v_bare.net_voltages[bare.find_net("s1").unwrap().0];
    let s1_loaded = v_loaded.net_voltages[loaded.find_net("s1").unwrap().0];
    let s2_bare = v_bare.net_voltages[bare.find_net("s2").unwrap().0];
    let s2_loaded = v_loaded.net_voltages[loaded.find_net("s2").unwrap().0];
    // The directly loaded net (s2) moves by mV...
    assert!((s2_loaded - s2_bare).abs() > 2e-4, "s2 moved {}", s2_loaded - s2_bare);
    // ...while the once-removed net (s1) moves by far less.
    assert!(
        (s1_loaded - s1_bare).abs() < 0.1 * (s2_loaded - s2_bare).abs(),
        "s1 moved {} vs s2 {}",
        s1_loaded - s1_bare,
        s2_loaded - s2_bare
    );
}

#[test]
fn temperature_amplifies_loading_on_subthreshold() {
    // Paper Fig. 9's direction, asserted end-to-end against the
    // isolated baseline.
    let tech = Technology::d25();
    let v = InputVector::parse("0").unwrap();
    let ld_sub = |temp: f64| {
        let nom = eval_isolated(&tech, temp, CellType::Inv, v).unwrap().breakdown;
        let load = eval_loaded(&tech, temp, CellType::Inv, v, &[1.5e-6], 1.5e-6).unwrap().breakdown;
        (load.sub - nom.sub) / nom.sub
    };
    let cold = ld_sub(283.0);
    let hot = ld_sub(423.0);
    assert!(hot > 2.0 * cold, "LD(sub): cold {} vs hot {}", cold, hot);
}
