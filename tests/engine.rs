//! Integration tests for the analysis engine: sweep determinism
//! across thread counts, MLV hill-climb vs. the exhaustive optimum,
//! and the persistent characterization cache round-trip.

use std::path::PathBuf;
use std::sync::Arc;

use nanoleak::prelude::*;
use nanoleak_engine::pattern_for_index;
use nanoleak_netlist::generate::{random_circuit, RandomCircuitSpec};

fn library() -> Arc<CellLibrary> {
    CellLibrary::shared_with_options(
        &Technology::d25(),
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    )
}

fn test_circuit(inputs: usize, gates: usize, seed: u64) -> Circuit {
    let raw = random_circuit(&RandomCircuitSpec::new("engine-it", inputs, 3, gates, 0, seed));
    normalize(&raw).expect("random circuits normalize")
}

#[test]
fn sweep_stats_identical_for_any_thread_count() {
    let circuit = test_circuit(8, 40, 11);
    let lib = library();
    let base = SweepConfig { vectors: 64, seed: 99, threads: 1, ..Default::default() };
    let single = sweep(&circuit, &lib, &base).unwrap();
    for threads in [2, 4, 7, 16] {
        let multi = sweep(&circuit, &lib, &SweepConfig { threads, ..base }).unwrap();
        assert_eq!(single.stats, multi.stats, "sweep stats diverged at {threads} threads");
    }
    // And the sweep is reproducible wholesale.
    let again = sweep(&circuit, &lib, &base).unwrap();
    assert_eq!(single.stats, again.stats);
}

#[test]
fn sweep_patterns_reproduce_individual_estimates() {
    let circuit = test_circuit(6, 25, 3);
    let lib = library();
    let config = SweepConfig { vectors: 16, seed: 5, ..Default::default() };
    let report = sweep(&circuit, &lib, &config).unwrap();
    // Re-derive each pattern and estimate it individually; the sweep
    // extremes must match a manual scan exactly.
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for i in 0..config.vectors {
        let p = pattern_for_index(&circuit, config.seed, i);
        let t = estimate(&circuit, &lib, &p, EstimatorMode::Lut).unwrap().total.total();
        min = min.min(t);
        max = max.max(t);
    }
    assert_eq!(report.stats.total.min, min);
    assert_eq!(report.stats.total.max, max);
}

#[test]
fn hill_climb_finds_the_exhaustive_optimum_on_a_small_circuit() {
    // 6 primary inputs: 64 vectors, exhaustively enumerable, so the
    // hill climb's answer can be checked against the true optimum.
    let circuit = test_circuit(6, 30, 7);
    let lib = library();
    let exhaustive = mlv_search(
        &circuit,
        &lib,
        &MlvConfig { strategy: MlvStrategy::Exhaustive, ..Default::default() },
    )
    .unwrap();
    let climb = mlv_search(
        &circuit,
        &lib,
        &MlvConfig {
            strategy: MlvStrategy::HillClimb { restarts: 8, max_steps: 64 },
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        climb.objective, exhaustive.objective,
        "hill climb missed the optimum: {} vs {}",
        climb.objective, exhaustive.objective
    );
    // The exhaustive search costs the full 2^6; the climb far less.
    assert_eq!(exhaustive.telemetry.evaluations, 64);
    assert!(climb.telemetry.evaluations < 8 * 64 * 7, "climb stays sub-exhaustive per restart");
}

#[test]
fn mlv_results_are_internally_consistent() {
    let circuit = test_circuit(5, 20, 13);
    let lib = library();
    let result = mlv_search(&circuit, &lib, &MlvConfig::default()).unwrap();
    // The reported leakage really is the report of the reported vector.
    let recheck = estimate(&circuit, &lib, &result.pattern, EstimatorMode::Lut).unwrap();
    assert_eq!(recheck, result.leakage);
    assert_eq!(result.objective, result.leakage.total.total());
}

fn scratch_cache(tag: &str) -> LibraryCache {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("nanoleak-engine-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    LibraryCache::new(dir)
}

#[test]
fn cache_round_trip_gives_bit_identical_vector_chars() {
    let tech = Technology::d25();
    let opts = CharacterizeOptions::coarse(&[CellType::Inv, CellType::Nand2]);
    let cache = scratch_cache("roundtrip");

    let (fresh, outcome) = cache.load_or_characterize(&tech, 300.0, &opts).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    let (loaded, outcome) = cache.load_or_characterize(&tech, 300.0, &opts).unwrap();
    assert_eq!(outcome, CacheOutcome::Hit);

    // Every (cell, vector) characterization must survive the disk
    // round trip bit-identically: same nominal components, same pin
    // currents, same LUT knots.
    for cell in [CellType::Inv, CellType::Nand2] {
        for v in InputVector::all(cell.num_inputs()) {
            let a = fresh.vector_char(cell, v).unwrap();
            let b = loaded.vector_char(cell, v).unwrap();
            assert_eq!(a, b, "{cell} vector {v} changed across the round trip");
            assert_eq!(a.nominal.total().to_bits(), b.nominal.total().to_bits());
            for (x, y) in a.pin_currents.iter().zip(&b.pin_currents) {
                assert_eq!(x.to_bits(), y.to_bits(), "pin current bits");
            }
        }
    }
    // And estimates computed from both libraries agree exactly.
    let circuit = {
        let mut b = CircuitBuilder::new("cache-check");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let n = b.add_gate(CellType::Nand2, &[a, c], "n");
        let y = b.add_gate(CellType::Inv, &[n], "y");
        b.mark_output(y);
        b.build().unwrap()
    };
    let p = Pattern::zeros(&circuit);
    let ea = estimate(&circuit, &fresh, &p, EstimatorMode::Lut).unwrap();
    let eb = estimate(&circuit, &loaded, &p, EstimatorMode::Lut).unwrap();
    assert_eq!(ea, eb);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn cache_invalidates_on_option_change() {
    let tech = Technology::d25();
    let cache = scratch_cache("stale-key");
    let coarse = CharacterizeOptions::coarse(&[CellType::Inv]);

    let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &coarse).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);

    // A changed option set must never be served from the old entry.
    let denser = CharacterizeOptions { points: coarse.points + 2, ..coarse.clone() };
    let (lib, outcome) = cache.load_or_characterize(&tech, 300.0, &denser).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss, "changed options are a different key");
    assert_eq!(lib.options, denser);

    // A changed temperature likewise.
    let (lib, outcome) = cache.load_or_characterize(&tech, 325.0, &coarse).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    assert_eq!(lib.temp, 325.0);

    // The original request still hits its own entry.
    let (_, outcome) = cache.load_or_characterize(&tech, 300.0, &coarse).unwrap();
    assert_eq!(outcome, CacheOutcome::Hit);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn prelude_exposes_the_engine_surface() {
    // Compile-time check that the facade prelude re-exports the
    // engine's entry points (this test exists so a prelude regression
    // fails loudly rather than breaking downstream users).
    let _: fn(&Circuit, &CellLibrary, &SweepConfig) -> Result<SweepReport, EstimateError> = sweep;
    let _: fn(&Circuit, &CellLibrary, &MlvConfig) -> Result<MlvResult, EngineError> = mlv_search;
    let _ = MlvGoal::Min;
    let _ = CacheOutcome::Hit;
}
