//! End-to-end tests of the `nanoleak-cli` binary: the `--format json`
//! machine interface of the `mlv` and `mc` subcommands, driven through
//! a real process the way a harness would.

use std::path::PathBuf;
use std::process::Command;

use serde::{json, Deserialize as _, Value};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nanoleak-cli"))
}

/// A tiny two-gate `.bench` circuit written to a temp file.
fn tiny_bench(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("nanoleak-cli-test-{tag}-{}.bench", std::process::id()));
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = NAND(a, b)\ny = NOT(n1)\n")
        .expect("write bench");
    path
}

fn get<'v>(v: &'v Value, name: &str) -> &'v Value {
    let Value::Record(fields) = v else { panic!("expected object, got {v:?}") };
    &fields.iter().find(|(n, _)| n == name).unwrap_or_else(|| panic!("no '{name}' in {v:?}")).1
}

fn run_json(args: &[&str]) -> Value {
    let out = cli().args(args).output().expect("spawn nanoleak-cli");
    assert!(
        out.status.success(),
        "cli {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    json::value_from_str(&stdout).unwrap_or_else(|e| panic!("bad JSON ({e}): {stdout}"))
}

/// `mlv --format json` emits the service's response type on stdout
/// (stderr carries the progress chatter), and the floats decode
/// bit-exactly across runs — the shortest-round-trip contract.
#[test]
fn mlv_json_output_parses_and_is_deterministic() {
    let bench = tiny_bench("mlv");
    let target = bench.to_str().unwrap();
    let args =
        ["mlv", target, "--strategy", "exhaustive", "--coarse", "--format", "json", "--no-cache"];
    let first = run_json(&args);
    assert_eq!(get(&first, "goal"), &Value::Str("min".into()));
    assert_eq!(get(&first, "strategy"), &Value::Str("exhaustive".into()));
    let objective = f64::from_value(get(&first, "objective_a")).expect("objective_a");
    assert!(objective > 0.0, "positive leakage, got {objective}");
    let Value::Str(vector) = get(&first, "vector") else { panic!("vector: {first:?}") };
    assert_eq!(vector.len(), 2, "two primary inputs");
    // The breakdown components sum to a total near the objective.
    let sum = ["sub_a", "gate_a", "btbt_a"]
        .iter()
        .map(|f| f64::from_value(get(&first, f)).unwrap())
        .sum::<f64>();
    assert!((sum - objective).abs() / objective < 1e-9, "{sum} vs {objective}");

    // A second run decodes to the same bits (only wall-clock differs).
    let second = run_json(&args);
    let again = f64::from_value(get(&second, "objective_a")).unwrap();
    assert_eq!(objective.to_bits(), again.to_bits(), "shortest-round-trip floats");
    let _ = std::fs::remove_file(&bench);
}

/// `mc --format json` carries the full distribution summary, and the
/// same seed reproduces it bit-exactly.
#[test]
fn mc_json_output_carries_the_distribution_summary() {
    let bench = tiny_bench("mc");
    let target = bench.to_str().unwrap();
    let args = [
        "mc",
        target,
        "--samples",
        "3",
        "--seed",
        "9",
        "--sigma-vt",
        "0.05",
        "--coarse",
        "--format",
        "json",
    ];
    let first = run_json(&args);
    assert_eq!(get(&first, "samples"), &Value::Int(3));
    assert_eq!(get(&first, "seed"), &Value::Int(9));
    let sigmas = get(&first, "sigmas");
    assert_eq!(f64::from_value(get(sigmas, "vt_inter")).unwrap(), 0.05);
    let summary = get(&first, "summary");
    let loaded_mean = f64::from_value(get(get(get(summary, "loaded"), "total"), "mean")).unwrap();
    let unloaded_mean =
        f64::from_value(get(get(get(summary, "unloaded"), "total"), "mean")).unwrap();
    assert!(loaded_mean > 0.0 && unloaded_mean > 0.0);
    assert_ne!(loaded_mean, unloaded_mean, "loading must move the distribution");

    let second = run_json(&args);
    let again_mean =
        f64::from_value(get(get(get(get(&second, "summary"), "loaded"), "total"), "mean")).unwrap();
    assert_eq!(loaded_mean.to_bits(), again_mean.to_bits(), "same seed, same bits");
    let _ = std::fs::remove_file(&bench);
}

/// Strict flag rejection covers the new subcommand too.
#[test]
fn mc_rejects_unknown_flags_and_bad_values() {
    let bench = tiny_bench("mc-bad");
    let target = bench.to_str().unwrap();
    let out = cli().args(["mc", target, "--bogus"]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--bogus"), "{stderr}");

    let out = cli().args(["mc", target, "--samples", "0", "--coarse"]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--samples"), "{stderr}");
    let _ = std::fs::remove_file(&bench);
}
