//! End-to-end integration: generate -> parse -> normalize ->
//! characterize -> estimate -> reference, across all crates.

use nanoleak::prelude::*;
use nanoleak_netlist::generate::{alu, iscas_like, multiplier, random_circuit, RandomCircuitSpec};
use rand::SeedableRng;
use std::sync::Arc;

fn library() -> Arc<CellLibrary> {
    CellLibrary::shared_with_options(
        &Technology::d25(),
        300.0,
        &CharacterizeOptions::coarse(&CellType::ALL),
    )
}

#[test]
fn bench_file_to_leakage_report() {
    // A hand-written .bench file through the whole pipeline.
    let text = "\
# toy sequential design
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
q = DFF(n2)
n1 = NAND(a, b)
n2 = XOR(n1, c)
n3 = AND(n2, q)
y = NOT(n3)
";
    let raw = parse_bench("toy", text).expect("parses");
    let circuit = normalize(&raw).expect("normalizes");
    assert_eq!(circuit.dff_count(), 1);

    let lib = library();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let pattern = Pattern::random(&circuit, &mut rng);
    let report = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).expect("estimates");
    assert!(report.total.total() > 0.0);
    assert_eq!(report.per_gate.len(), circuit.gate_count());
}

#[test]
fn estimator_matches_reference_on_random_logic() {
    let tech = Technology::d25();
    let lib = library();
    let raw = random_circuit(&RandomCircuitSpec::new("it", 8, 4, 60, 3, 99));
    let circuit = normalize(&raw).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for _ in 0..3 {
        let pattern = Pattern::random(&circuit, &mut rng);
        let est = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).unwrap();
        let rf = reference_leakage(&circuit, &tech, 300.0, &pattern, &ReferenceOptions::default())
            .unwrap();
        let acc = accuracy(&est, &rf.leakage);
        assert!(
            acc.total_rel_err.abs() < 0.04,
            "total err {}% on pattern {:?}",
            acc.total_rel_err * 100.0,
            pattern
        );
    }
}

#[test]
fn loading_statistics_have_paper_signs_on_multiplier() {
    // mult88's heavy fanout structure: subthreshold up, gate/btbt down,
    // total up a few percent (paper Fig. 12b shape).
    let lib = library();
    let circuit = normalize(&multiplier(4)).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let patterns = Pattern::random_batch(&circuit, &mut rng, 8);
    let loaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::Lut).unwrap();
    let unloaded = estimate_batch(&circuit, &lib, &patterns, EstimatorMode::NoLoading).unwrap();
    let pairs: Vec<_> = loaded.into_iter().zip(unloaded).collect();
    let impact = LoadingImpact::from_pairs(&pairs);
    assert!(impact.avg.sub > 0.0, "{:?}", impact.avg);
    assert!(impact.avg.gate < 0.0, "{:?}", impact.avg);
    assert!(impact.avg.btbt < 0.0, "{:?}", impact.avg);
    assert!(impact.avg_total > 0.0 && impact.avg_total < 0.12, "{}", impact.avg_total);
}

#[test]
fn per_gate_loading_moves_in_both_directions() {
    // Paper Section 6: in a large circuit some gates' leakage rises and
    // some falls — the cancellation that keeps the net effect ~5%.
    let lib = library();
    let circuit = normalize(&alu(4)).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let pattern = Pattern::random(&circuit, &mut rng);
    let loaded = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).unwrap();
    let unloaded = estimate(&circuit, &lib, &pattern, EstimatorMode::NoLoading).unwrap();
    let mut ups = 0;
    let mut downs = 0;
    for (l, u) in loaded.per_gate.iter().zip(&unloaded.per_gate) {
        let d = l.total() - u.total();
        if d > 1e-12 {
            ups += 1;
        } else if d < -1e-12 {
            downs += 1;
        }
    }
    assert!(ups > 0, "some gates must leak more");
    assert!(downs > 0, "some gates must leak less");
}

#[test]
fn iscas_standin_runs_through_cli_path() {
    // The smallest ISCAS stand-in through the estimator, twice, with
    // identical results (determinism across the full stack).
    let lib = library();
    let circuit = normalize(&iscas_like("s838").unwrap()).unwrap();
    let mut rng1 = rand::rngs::StdRng::seed_from_u64(23);
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(23);
    let p1 = Pattern::random(&circuit, &mut rng1);
    let p2 = Pattern::random(&circuit, &mut rng2);
    let a = estimate(&circuit, &lib, &p1, EstimatorMode::Lut).unwrap();
    let b = estimate(&circuit, &lib, &p2, EstimatorMode::Lut).unwrap();
    assert_eq!(a, b);
}

#[test]
fn direct_solve_mode_refines_lut_mode() {
    // DirectSolve removes interpolation error; both stay within a
    // percent of each other and of the reference on a fanout web.
    let tech = Technology::d25();
    let lib = library();
    let mut b = CircuitBuilder::new("web");
    let a = b.add_input("a");
    let mid = b.add_gate(CellType::Nand2, &[a, a], "mid");
    for i in 0..5 {
        let y = b.add_gate(CellType::Inv, &[mid], &format!("y{i}"));
        b.mark_output(y);
    }
    let circuit = b.build().unwrap();
    let pattern = Pattern { pi: vec![true], states: vec![] };
    let lut = estimate(&circuit, &lib, &pattern, EstimatorMode::Lut).unwrap();
    let direct = estimate(&circuit, &lib, &pattern, EstimatorMode::DirectSolve).unwrap();
    let rf =
        reference_leakage(&circuit, &tech, 300.0, &pattern, &ReferenceOptions::default()).unwrap();
    let lut_vs_direct = (lut.total.total() - direct.total.total()).abs() / direct.total.total();
    assert!(lut_vs_direct < 0.01, "lut vs direct {}", lut_vs_direct);
    let direct_err = accuracy(&direct, &rf.leakage).total_rel_err.abs();
    assert!(direct_err < 0.03, "direct vs reference {}", direct_err);
}
